#include "logic/circuit.h"

#include <gtest/gtest.h>

#include <random>

namespace kbt {
namespace {

TEST(CircuitTest, ConstantsAndVars) {
  Circuit c;
  EXPECT_EQ(c.FalseNode(), 0);
  EXPECT_EQ(c.TrueNode(), 1);
  int v0 = c.VarNode(0);
  EXPECT_EQ(c.VarNode(0), v0);  // Hash-consed.
  EXPECT_NE(c.VarNode(1), v0);
}

TEST(CircuitTest, NotFoldsConstantsAndDoubleNegation) {
  Circuit c;
  EXPECT_EQ(c.NotNode(c.TrueNode()), c.FalseNode());
  EXPECT_EQ(c.NotNode(c.FalseNode()), c.TrueNode());
  int v = c.VarNode(0);
  EXPECT_EQ(c.NotNode(c.NotNode(v)), v);
}

TEST(CircuitTest, AndSimplifications) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  EXPECT_EQ(c.AndNode({}), c.TrueNode());
  EXPECT_EQ(c.AndNode({v0}), v0);
  EXPECT_EQ(c.AndNode({v0, c.TrueNode()}), v0);
  EXPECT_EQ(c.AndNode({v0, c.FalseNode()}), c.FalseNode());
  EXPECT_EQ(c.AndNode({v0, v0}), v0);
  EXPECT_EQ(c.AndNode({v0, c.NotNode(v0)}), c.FalseNode());
  // Flattening: and(and(v0,v1), v0) == and(v0, v1).
  EXPECT_EQ(c.AndNode({c.AndNode({v0, v1}), v0}), c.AndNode({v0, v1}));
}

TEST(CircuitTest, OrSimplifications) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  EXPECT_EQ(c.OrNode({}), c.FalseNode());
  EXPECT_EQ(c.OrNode({v0, c.FalseNode()}), v0);
  EXPECT_EQ(c.OrNode({v0, c.TrueNode()}), c.TrueNode());
  EXPECT_EQ(c.OrNode({v0, c.NotNode(v0)}), c.TrueNode());
  EXPECT_EQ(c.OrNode({c.OrNode({v0, v1}), v1}), c.OrNode({v0, v1}));
}

TEST(CircuitTest, HashConsingSharesStructure) {
  Circuit c;
  int a = c.AndNode({c.VarNode(0), c.VarNode(1)});
  int b = c.AndNode({c.VarNode(1), c.VarNode(0)});  // Children sorted: same node.
  EXPECT_EQ(a, b);
}

TEST(CircuitTest, EvaluateAndCollectVars) {
  Circuit c;
  // (v0 ∧ ¬v1) ∨ v2
  int f = c.OrNode({c.AndNode({c.VarNode(0), c.NotNode(c.VarNode(1))}),
                    c.VarNode(2)});
  auto val = [](bool a, bool b, bool d) {
    return [=](int v) { return v == 0 ? a : (v == 1 ? b : d); };
  };
  EXPECT_TRUE(c.Evaluate(f, val(true, false, false)));
  EXPECT_FALSE(c.Evaluate(f, val(true, true, false)));
  EXPECT_TRUE(c.Evaluate(f, val(false, true, true)));
  std::vector<int> vars = c.CollectVars(f);
  EXPECT_EQ(vars, (std::vector<int>{0, 1, 2}));
}

TEST(CircuitTest, ImpliesAndIffHelpers) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  int imp = c.ImpliesNode(v0, v1);
  EXPECT_FALSE(c.Evaluate(imp, [](int v) { return v == 0; }));
  EXPECT_TRUE(c.Evaluate(imp, [](int) { return true; }));
  int iff = c.IffNode(v0, v1);
  EXPECT_TRUE(c.Evaluate(iff, [](int) { return false; }));
  EXPECT_FALSE(c.Evaluate(iff, [](int v) { return v == 1; }));
}

TEST(CircuitTest, EvaluateAllIntoMatchesEvaluateAndCoversAllNodes) {
  // Regression: the DFS suspends mid-child-scan when a child is unevaluated;
  // a decisive child seen *before* the suspension must still decide the gate
  // (And(false, <unevaluated>) is false even after the scan resumes past it).
  Circuit c;
  int x = c.VarNode(0), y = c.VarNode(1);
  int and_fx = c.AndNode({x, y});
  int or_tx = c.OrNode({x, y});
  std::vector<int8_t> memo;
  auto x_false_y_true = [](int v) { return v == 1; };
  c.EvaluateAllInto(and_fx, x_false_y_true, &memo);
  EXPECT_EQ(memo[static_cast<size_t>(and_fx)], 1);  // false ∧ true = false.
  c.EvaluateAllInto(or_tx, [](int v) { return v == 0; }, &memo);
  EXPECT_EQ(memo[static_cast<size_t>(or_tx)], 2);  // true ∨ false = true.

  // Property: on random circuits, every reachable node is valued, each gate's
  // value is consistent with its children, and the root agrees with Evaluate.
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int> var(0, 5);
  std::uniform_int_distribution<int> op(0, 2);
  for (int iter = 0; iter < 50; ++iter) {
    Circuit rc;
    std::vector<int> nodes;
    for (int v = 0; v < 6; ++v) nodes.push_back(rc.VarNode(v));
    for (int step = 0; step < 20; ++step) {
      std::uniform_int_distribution<size_t> pick(0, nodes.size() - 1);
      int a = nodes[pick(rng)], b = nodes[pick(rng)];
      int kind = op(rng);
      nodes.push_back(kind == 0   ? rc.AndNode({a, b})
                      : kind == 1 ? rc.OrNode({a, b})
                                  : rc.NotNode(a));
    }
    int root = nodes.back();
    uint64_t mask = rng();
    auto value = [&](int v) { return ((mask >> v) & 1) != 0; };
    std::vector<int8_t> all;
    rc.EvaluateAllInto(root, value, &all);
    EXPECT_EQ(all[static_cast<size_t>(root)] == 2, rc.Evaluate(root, value));
    for (size_t id = 0; id < rc.size(); ++id) {
      if (all[id] == 0) continue;  // Unreachable from root.
      Circuit::Node n = rc.node(static_cast<int>(id));
      switch (n.kind) {
        case Circuit::NodeKind::kAnd:
        case Circuit::NodeKind::kOr: {
          bool is_and = n.kind == Circuit::NodeKind::kAnd;
          bool acc = is_and;
          for (int child : n.children) {
            ASSERT_NE(all[static_cast<size_t>(child)], 0);
            bool cv = all[static_cast<size_t>(child)] == 2;
            acc = is_and ? (acc && cv) : (acc || cv);
          }
          EXPECT_EQ(all[id] == 2, acc) << "node " << id << " iter " << iter;
          break;
        }
        case Circuit::NodeKind::kNot:
          EXPECT_EQ(all[id] == 2, all[static_cast<size_t>(n.children[0])] != 2);
          break;
        case Circuit::NodeKind::kVar:
          EXPECT_EQ(all[id] == 2, value(n.var));
          break;
        case Circuit::NodeKind::kConst:
          break;
      }
    }
  }
}

}  // namespace
}  // namespace kbt
