#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/engine.h"
#include "core/mu.h"
#include "core/winslett_order.h"
#include "eval/model_check.h"
#include "logic/circuit.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "sat/solver.h"
#include "sat/tseitin.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;

MuOptions Strategy(MuStrategy s) {
  MuOptions o;
  o.strategy = s;
  return o;
}

/// The workhorse property test: on random databases and random sentences, the CDCL
/// enumeration must return exactly the reference (specification) result.
class MuCrosscheckTest : public ::testing::TestWithParam<int> {};

TEST_P(MuCrosscheckTest, SatMatchesReferenceOnRandomInputs) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 9);
  testutil::RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.15);
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 16;
    StatusOr<Knowledgebase> expected = Mu(sentence, db, ref);
    if (!expected.ok()) continue;  // Too many mentioned atoms for the reference.
    StatusOr<Knowledgebase> got = Mu(sentence, db, Strategy(MuStrategy::kSat));
    ASSERT_TRUE(got.ok()) << got.status() << "\nφ = " << ToString(sentence);
    EXPECT_EQ(KbAsStrings(*got), KbAsStrings(*expected))
        << "φ = " << ToString(sentence) << "\ndb = " << db.ToString();
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuCrosscheckTest, ::testing::Range(0, 25));

/// Cone-blocking is a pure optimization: results must match with it disabled.
class ConeBlockingAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConeBlockingAblationTest, SameResultsWithoutConeBlocking) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 2862933555777941757ULL + 3);
  testutil::RandomSentenceGenerator gen(&rng, 0.1);
  for (int trial = 0; trial < 8; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    MuOptions with = Strategy(MuStrategy::kSat);
    MuOptions without = Strategy(MuStrategy::kSat);
    without.use_cone_blocking = false;
    StatusOr<Knowledgebase> a = Mu(sentence, db, with);
    StatusOr<Knowledgebase> b = Mu(sentence, db, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(KbAsStrings(*a), KbAsStrings(*b)) << ToString(sentence);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConeBlockingAblationTest, ::testing::Range(0, 10));

/// Every returned model must satisfy the sentence over the update domain B, and be
/// no farther from db than any other returned model (internal consistency).
class MuSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MuSoundnessTest, ModelsSatisfyAndAreMutuallyMinimal) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 3935559000370003845ULL + 7);
  testutil::RandomSentenceGenerator gen(&rng, 0.1);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    StatusOr<Knowledgebase> result = Mu(sentence, db, Strategy(MuStrategy::kSat));
    ASSERT_TRUE(result.ok());
    std::vector<Value> domain = ActiveDomain(db, sentence);
    for (const Database& m : *result) {
      EXPECT_TRUE(*Satisfies(m, sentence, domain))
          << "non-model returned for φ = " << ToString(sentence);
      for (const Database& other : *result) {
        if (m == other) continue;
        EXPECT_FALSE(*StrictlyCloser(other, m, db))
            << "dominated model returned for φ = " << ToString(sentence);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuSoundnessTest, ::testing::Range(0, 15));

/// Builds a random circuit over `num_vars` external variables.
int RandomCircuitRoot(Circuit* c, int num_vars, std::mt19937_64* rng) {
  std::vector<int> pool;
  for (int v = 0; v < num_vars; ++v) pool.push_back(c->VarNode(v));
  std::uniform_int_distribution<int> op(0, 3);
  std::uniform_int_distribution<size_t> pick(0, 1000);
  for (int step = 0; step < 14; ++step) {
    int a = pool[pick(*rng) % pool.size()];
    int b = pool[pick(*rng) % pool.size()];
    switch (op(*rng)) {
      case 0:
        pool.push_back(c->AndNode({a, b}));
        break;
      case 1:
        pool.push_back(c->OrNode({a, b}));
        break;
      case 2:
        pool.push_back(c->NotNode(a));
        break;
      default:
        pool.push_back(c->IffNode(a, b));
        break;
    }
  }
  return pool.back();
}

/// The incremental-vs-fresh property behind the μ engine's enumeration loop:
/// enumerating all models of a circuit with ONE solver + incremental Tseitin
/// encoder and accumulated blocking clauses must produce exactly the models
/// found by re-encoding from scratch (fresh solver per step, all previous
/// blocking clauses re-added), and exactly the assignments the circuit itself
/// accepts.
class IncrementalEnumerationTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEnumerationTest, MatchesFreshSolverEnumeration) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 1442695040888963407ULL + 5);
  constexpr int kVars = 6;
  for (int trial = 0; trial < 5; ++trial) {
    Circuit circuit;
    int root = RandomCircuitRoot(&circuit, kVars, &rng);
    std::vector<int> vars = circuit.CollectVars(root);

    // Reference: brute force over the mentioned variables.
    std::vector<uint32_t> expected;
    for (uint32_t mask = 0; mask < (uint32_t{1} << kVars); ++mask) {
      auto value = [&](int v) { return ((mask >> v) & 1) != 0; };
      uint32_t mentioned = 0;
      for (int v : vars) mentioned |= (value(v) ? 1u : 0u) << v;
      if (mentioned != mask) continue;  // Canonical: unmentioned vars false.
      if (circuit.Evaluate(root, value)) expected.push_back(mask);
    }
    std::sort(expected.begin(), expected.end());

    // Incremental: one solver, one encoder, blocking clauses pushed as found.
    std::vector<uint32_t> incremental;
    {
      sat::Solver solver;
      sat::TseitinEncoder encoder(&circuit, &solver);
      encoder.Assert(root);
      while (solver.Solve() == sat::SolveResult::kSat) {
        uint32_t mask = 0;
        std::vector<sat::Lit> block;
        for (int v : vars) {
          bool value = solver.ModelValue(encoder.VarForAtom(v));
          if (value) mask |= 1u << v;
          block.push_back(sat::MkLit(encoder.VarForAtom(v), value));
        }
        incremental.push_back(mask);
        if (block.empty()) break;  // Circuit is constant-true over no vars.
        solver.AddClause(block);
      }
    }
    std::sort(incremental.begin(), incremental.end());
    EXPECT_EQ(incremental, expected) << "incremental enumeration, trial " << trial;

    // Fresh: re-encode from scratch each step, re-adding all previous blocks.
    std::vector<uint32_t> fresh;
    std::vector<uint32_t> blocked_masks;
    while (true) {
      sat::Solver solver;
      sat::TseitinEncoder encoder(&circuit, &solver);
      encoder.Assert(root);
      bool exhausted = false;
      for (uint32_t m : blocked_masks) {
        std::vector<sat::Lit> block;
        for (int v : vars) {
          block.push_back(sat::MkLit(encoder.VarForAtom(v), ((m >> v) & 1) != 0));
        }
        if (block.empty()) {
          exhausted = true;
          break;
        }
        solver.AddClause(block);
      }
      if (exhausted || solver.Solve() == sat::SolveResult::kUnsat) break;
      uint32_t mask = 0;
      for (int v : vars) {
        if (solver.ModelValue(encoder.VarForAtom(v))) mask |= 1u << v;
      }
      fresh.push_back(mask);
      blocked_masks.push_back(mask);
    }
    std::sort(fresh.begin(), fresh.end());
    EXPECT_EQ(fresh, expected) << "fresh-solver enumeration, trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEnumerationTest, ::testing::Range(0, 10));

TEST(MuFastPathCrosscheckTest, DatalogMatchesGeneralEngines) {
  // Transitive closure sentences on small random graphs: the Theorem 4.8 fast
  // path, the CDCL engine and the reference enumeration must agree.
  std::mt19937_64 rng(424242);
  Formula tc = *ParseFormula(
      "forall x, y, z: (T(x, y) & E(y, z)) | E(x, z) -> T(x, z)");
  for (int trial = 0; trial < 6; ++trial) {
    testutil::Graph g = testutil::RandomGraph(3, 0.4, &rng);
    Database db = *Database::Create(*Schema::Of({{"E", 2}}),
                                    {testutil::EdgeRelation(g)});
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 18;
    StatusOr<Knowledgebase> expected = Mu(tc, db, ref);
    if (!expected.ok()) continue;
    Knowledgebase via_datalog = *Mu(tc, db, Strategy(MuStrategy::kDatalog));
    Knowledgebase via_sat = *Mu(tc, db, Strategy(MuStrategy::kSat));
    EXPECT_EQ(KbAsStrings(via_datalog), KbAsStrings(*expected));
    EXPECT_EQ(KbAsStrings(via_sat), KbAsStrings(*expected));
  }
}

TEST(MuFastPathCrosscheckTest, DatalogNaiveMatchesSeminaive) {
  std::mt19937_64 rng(777);
  Formula tc = *ParseFormula(
      "forall x, y, z: (T(x, y) & E(y, z)) | E(x, z) -> T(x, z)");
  for (int trial = 0; trial < 5; ++trial) {
    testutil::Graph g = testutil::RandomGraph(5, 0.3, &rng);
    Database db = *Database::Create(*Schema::Of({{"E", 2}}),
                                    {testutil::EdgeRelation(g)});
    MuOptions semi = Strategy(MuStrategy::kDatalog);
    MuOptions naive = Strategy(MuStrategy::kDatalog);
    naive.use_seminaive = false;
    EXPECT_EQ(KbAsStrings(*Mu(tc, db, semi)), KbAsStrings(*Mu(tc, db, naive)));
  }
}

TEST(MuFastPathCrosscheckTest, SameGenerationFixpointQuery) {
  // §1 claims all fixpoint queries are expressible; same-generation is the
  // classic non-linear one. sg(x,y) ← flat(x,y); sg(x,y) ← up(x,a) sg(a,b)
  // down(b,y). Verify the Horn fast path against the CDCL engine and against a
  // hand-computed fixpoint on a small tree.
  Formula sg = *ParseFormula(
      "(forall x, y: Flat(x, y) -> Sg(x, y)) & "
      "(forall x, y, a, b: Up(x, a) & Sg(a, b) & Down(b, y) -> Sg(x, y))");
  Database db = *MakeDatabase(
      {{"Up", 2}, {"Down", 2}, {"Flat", 2}},
      {{"Up", {{"c1", "p1"}, {"c2", "p2"}}},
       {"Down", {{"p1", "c1"}, {"p2", "c2"}}},
       {"Flat", {{"p1", "p2"}}}});
  Knowledgebase via_datalog = *Mu(sg, db, Strategy(MuStrategy::kDatalog));
  Knowledgebase via_sat = *Mu(sg, db, Strategy(MuStrategy::kSat));
  EXPECT_EQ(KbAsStrings(via_datalog), KbAsStrings(via_sat));
  ASSERT_EQ(via_datalog.size(), 1u);
  // p1 ~ p2 directly; hence c1 ~ c2 one generation down.
  EXPECT_EQ(*via_datalog.databases()[0].RelationFor("Sg"),
            MakeRelation(2, {{"p1", "p2"}, {"c1", "c2"}}));
}

TEST(MuFastPathCrosscheckTest, MonotoneNonHornStillMinimizesToFixpoint) {
  // "in case a formula ... is monotone, our update operator also produces that
  // least fixpoint" — a monotone sentence outside the Horn fragment (disjunctive
  // body with an existential) still yields the least fixpoint via the generic
  // engine.
  Formula phi = *ParseFormula(
      "forall x, y: (E(x, y) | (exists z: T(x, z) & T(z, y))) -> T(x, y)");
  Database db = *MakeDatabase({{"E", 2}},
                              {{"E", {{"a", "b"}, {"b", "c"}, {"c", "d"}}}});
  Knowledgebase out = *Mu(phi, db, Strategy(MuStrategy::kSat));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("T"),
            MakeRelation(2, {{"a", "b"},
                             {"b", "c"},
                             {"c", "d"},
                             {"a", "c"},
                             {"b", "d"},
                             {"a", "d"}}));
  EXPECT_EQ(*out.databases()[0].RelationFor("E"), *db.RelationFor("E"));
}

TEST(MuFastPathCrosscheckTest, DefinitionalMatchesGeneralEngines) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    // Non-recursive definitions with ∃-projection and ↔.
    Formula def = *ParseFormula(
        "(forall x: (exists y: Q(x, y)) -> Src(x)) & "
        "(forall x, y: Q(x, y) & P(x) <-> Good(x, y))");
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 16;
    StatusOr<Knowledgebase> expected = Mu(def, db, ref);
    if (!expected.ok()) continue;
    Knowledgebase via_def = *Mu(def, db, Strategy(MuStrategy::kDefinitional));
    Knowledgebase via_sat = *Mu(def, db, Strategy(MuStrategy::kSat));
    EXPECT_EQ(KbAsStrings(via_def), KbAsStrings(*expected));
    EXPECT_EQ(KbAsStrings(via_sat), KbAsStrings(*expected));
  }
}

}  // namespace
}  // namespace kbt
