#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "core/mu.h"
#include "core/winslett_order.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;

MuOptions Strategy(MuStrategy s) {
  MuOptions o;
  o.strategy = s;
  return o;
}

/// The workhorse property test: on random databases and random sentences, the CDCL
/// enumeration must return exactly the reference (specification) result.
class MuCrosscheckTest : public ::testing::TestWithParam<int> {};

TEST_P(MuCrosscheckTest, SatMatchesReferenceOnRandomInputs) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 9);
  testutil::RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.15);
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 16;
    StatusOr<Knowledgebase> expected = Mu(sentence, db, ref);
    if (!expected.ok()) continue;  // Too many mentioned atoms for the reference.
    StatusOr<Knowledgebase> got = Mu(sentence, db, Strategy(MuStrategy::kSat));
    ASSERT_TRUE(got.ok()) << got.status() << "\nφ = " << ToString(sentence);
    EXPECT_EQ(KbAsStrings(*got), KbAsStrings(*expected))
        << "φ = " << ToString(sentence) << "\ndb = " << db.ToString();
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuCrosscheckTest, ::testing::Range(0, 25));

/// Cone-blocking is a pure optimization: results must match with it disabled.
class ConeBlockingAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConeBlockingAblationTest, SameResultsWithoutConeBlocking) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 2862933555777941757ULL + 3);
  testutil::RandomSentenceGenerator gen(&rng, 0.1);
  for (int trial = 0; trial < 8; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    MuOptions with = Strategy(MuStrategy::kSat);
    MuOptions without = Strategy(MuStrategy::kSat);
    without.use_cone_blocking = false;
    StatusOr<Knowledgebase> a = Mu(sentence, db, with);
    StatusOr<Knowledgebase> b = Mu(sentence, db, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(KbAsStrings(*a), KbAsStrings(*b)) << ToString(sentence);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConeBlockingAblationTest, ::testing::Range(0, 10));

/// Every returned model must satisfy the sentence over the update domain B, and be
/// no farther from db than any other returned model (internal consistency).
class MuSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MuSoundnessTest, ModelsSatisfyAndAreMutuallyMinimal) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 3935559000370003845ULL + 7);
  testutil::RandomSentenceGenerator gen(&rng, 0.1);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula sentence = gen.Generate(3);
    StatusOr<Knowledgebase> result = Mu(sentence, db, Strategy(MuStrategy::kSat));
    ASSERT_TRUE(result.ok());
    std::vector<Value> domain = ActiveDomain(db, sentence);
    for (const Database& m : *result) {
      EXPECT_TRUE(*Satisfies(m, sentence, domain))
          << "non-model returned for φ = " << ToString(sentence);
      for (const Database& other : *result) {
        if (m == other) continue;
        EXPECT_FALSE(*StrictlyCloser(other, m, db))
            << "dominated model returned for φ = " << ToString(sentence);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuSoundnessTest, ::testing::Range(0, 15));

TEST(MuFastPathCrosscheckTest, DatalogMatchesGeneralEngines) {
  // Transitive closure sentences on small random graphs: the Theorem 4.8 fast
  // path, the CDCL engine and the reference enumeration must agree.
  std::mt19937_64 rng(424242);
  Formula tc = *ParseFormula(
      "forall x, y, z: (T(x, y) & E(y, z)) | E(x, z) -> T(x, z)");
  for (int trial = 0; trial < 6; ++trial) {
    testutil::Graph g = testutil::RandomGraph(3, 0.4, &rng);
    Database db = *Database::Create(*Schema::Of({{"E", 2}}),
                                    {testutil::EdgeRelation(g)});
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 18;
    StatusOr<Knowledgebase> expected = Mu(tc, db, ref);
    if (!expected.ok()) continue;
    Knowledgebase via_datalog = *Mu(tc, db, Strategy(MuStrategy::kDatalog));
    Knowledgebase via_sat = *Mu(tc, db, Strategy(MuStrategy::kSat));
    EXPECT_EQ(KbAsStrings(via_datalog), KbAsStrings(*expected));
    EXPECT_EQ(KbAsStrings(via_sat), KbAsStrings(*expected));
  }
}

TEST(MuFastPathCrosscheckTest, DatalogNaiveMatchesSeminaive) {
  std::mt19937_64 rng(777);
  Formula tc = *ParseFormula(
      "forall x, y, z: (T(x, y) & E(y, z)) | E(x, z) -> T(x, z)");
  for (int trial = 0; trial < 5; ++trial) {
    testutil::Graph g = testutil::RandomGraph(5, 0.3, &rng);
    Database db = *Database::Create(*Schema::Of({{"E", 2}}),
                                    {testutil::EdgeRelation(g)});
    MuOptions semi = Strategy(MuStrategy::kDatalog);
    MuOptions naive = Strategy(MuStrategy::kDatalog);
    naive.use_seminaive = false;
    EXPECT_EQ(KbAsStrings(*Mu(tc, db, semi)), KbAsStrings(*Mu(tc, db, naive)));
  }
}

TEST(MuFastPathCrosscheckTest, SameGenerationFixpointQuery) {
  // §1 claims all fixpoint queries are expressible; same-generation is the
  // classic non-linear one. sg(x,y) ← flat(x,y); sg(x,y) ← up(x,a) sg(a,b)
  // down(b,y). Verify the Horn fast path against the CDCL engine and against a
  // hand-computed fixpoint on a small tree.
  Formula sg = *ParseFormula(
      "(forall x, y: Flat(x, y) -> Sg(x, y)) & "
      "(forall x, y, a, b: Up(x, a) & Sg(a, b) & Down(b, y) -> Sg(x, y))");
  Database db = *MakeDatabase(
      {{"Up", 2}, {"Down", 2}, {"Flat", 2}},
      {{"Up", {{"c1", "p1"}, {"c2", "p2"}}},
       {"Down", {{"p1", "c1"}, {"p2", "c2"}}},
       {"Flat", {{"p1", "p2"}}}});
  Knowledgebase via_datalog = *Mu(sg, db, Strategy(MuStrategy::kDatalog));
  Knowledgebase via_sat = *Mu(sg, db, Strategy(MuStrategy::kSat));
  EXPECT_EQ(KbAsStrings(via_datalog), KbAsStrings(via_sat));
  ASSERT_EQ(via_datalog.size(), 1u);
  // p1 ~ p2 directly; hence c1 ~ c2 one generation down.
  EXPECT_EQ(*via_datalog.databases()[0].RelationFor("Sg"),
            MakeRelation(2, {{"p1", "p2"}, {"c1", "c2"}}));
}

TEST(MuFastPathCrosscheckTest, MonotoneNonHornStillMinimizesToFixpoint) {
  // "in case a formula ... is monotone, our update operator also produces that
  // least fixpoint" — a monotone sentence outside the Horn fragment (disjunctive
  // body with an existential) still yields the least fixpoint via the generic
  // engine.
  Formula phi = *ParseFormula(
      "forall x, y: (E(x, y) | (exists z: T(x, z) & T(z, y))) -> T(x, y)");
  Database db = *MakeDatabase({{"E", 2}},
                              {{"E", {{"a", "b"}, {"b", "c"}, {"c", "d"}}}});
  Knowledgebase out = *Mu(phi, db, Strategy(MuStrategy::kSat));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("T"),
            MakeRelation(2, {{"a", "b"},
                             {"b", "c"},
                             {"c", "d"},
                             {"a", "c"},
                             {"b", "d"},
                             {"a", "d"}}));
  EXPECT_EQ(*out.databases()[0].RelationFor("E"), *db.RelationFor("E"));
}

TEST(MuFastPathCrosscheckTest, DefinitionalMatchesGeneralEngines) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    // Non-recursive definitions with ∃-projection and ↔.
    Formula def = *ParseFormula(
        "(forall x: (exists y: Q(x, y)) -> Src(x)) & "
        "(forall x, y: Q(x, y) & P(x) <-> Good(x, y))");
    MuOptions ref = Strategy(MuStrategy::kReference);
    ref.max_reference_atoms = 16;
    StatusOr<Knowledgebase> expected = Mu(def, db, ref);
    if (!expected.ok()) continue;
    Knowledgebase via_def = *Mu(def, db, Strategy(MuStrategy::kDefinitional));
    Knowledgebase via_sat = *Mu(def, db, Strategy(MuStrategy::kSat));
    EXPECT_EQ(KbAsStrings(via_def), KbAsStrings(*expected));
    EXPECT_EQ(KbAsStrings(via_sat), KbAsStrings(*expected));
  }
}

}  // namespace
}  // namespace kbt
