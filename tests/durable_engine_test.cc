/// \file
/// Tests for DurableEngine: the write-ahead commit protocol (state and log
/// advance together or not at all), recovery on reopen, the three sync modes'
/// durability windows, self-healing after transient I/O errors, checkpoint
/// rotation with garbage collection, and the broken-store terminal state.

#include "store/durable_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "store/fault_env.h"
#include "store/recovery.h"
#include "testutil.h"

namespace kbt::store {
namespace {

/// One member database over testutil::TestSchema with Dom = {a, b, c} (P and Q
/// empty), so τ updates have a fixed active domain.
Knowledgebase InitialKb() {
  Database db(testutil::TestSchema());
  std::vector<Tuple> dom;
  for (const std::string& x : testutil::TestConstants()) {
    dom.push_back(Tuple{Name(x)});
  }
  db = *db.WithRelation("Dom", Relation(1, std::move(dom)));
  return *Knowledgebase::FromDatabases({db});
}

StoreOptions WithEnv(FaultInjectionEnv* env, SyncMode mode = SyncMode::kEveryCommit,
                     size_t interval = 8) {
  StoreOptions options;
  options.env = env;
  options.sync_mode = mode;
  options.group_commit_interval = interval;
  return options;
}

std::unique_ptr<DurableEngine> MustOpen(const std::string& dir,
                                        const Knowledgebase& initial,
                                        StoreOptions options) {
  auto store = DurableEngine::Open(dir, initial, options);
  EXPECT_TRUE(store.ok()) << store.status().message();
  return std::move(*store);
}

TEST(DurableEngineTest, FreshOpenWritesCheckpointZeroAndEmptyWal) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  EXPECT_EQ(store->kb(), InitialKb());
  EXPECT_EQ(store->lsn(), 0u);
  EXPECT_FALSE(store->broken());
  EXPECT_TRUE(env.FileExists("db/checkpoint-0"));
  EXPECT_TRUE(env.FileExists("db/wal-0"));
  EXPECT_FALSE(env.FileExists("db/checkpoint-0.tmp"));
}

TEST(DurableEngineTest, ApplyAdvancesStateAndReopenRecoversIt) {
  FaultInjectionEnv env;
  Knowledgebase after{Schema()};
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env));
    auto r1 = store->Apply("tau{ P(a) }");
    ASSERT_TRUE(r1.ok()) << r1.status().message();
    EXPECT_EQ(store->kb(), *r1);
    auto r2 = store->Apply("tau{ Q(a, b) } >> lub");
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(store->lsn(), 2u);
    after = store->kb();
    EXPECT_NE(after, InitialKb());
  }
  // Reopen with a decoy initial state: an existing store must ignore it.
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env));
  EXPECT_EQ(store->kb(), after);
  EXPECT_EQ(store->lsn(), 2u);
}

TEST(DurableEngineTest, FailedApplyCommitsNothing) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  EXPECT_FALSE(store->Apply("tau{ ((( }").ok());  // Parse error.
  EXPECT_EQ(store->lsn(), 0u);
  EXPECT_EQ(store->kb(), InitialKb());
  // The WAL holds no record: a reopen after a crash sees the initial state.
  env.Crash();
  env.RecoverFromCrash();
  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), InitialKb());
}

TEST(DurableEngineTest, TupleDeltasRoundTripThroughCrash) {
  FaultInjectionEnv env;
  Knowledgebase committed{Schema()};
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env));
    ASSERT_TRUE(store->InsertTuples("Q", {{"a", "b"}, {"b", "c"}}).ok());
    ASSERT_TRUE(store->InsertTuples("P", {{"a"}}).ok());
    ASSERT_TRUE(store->DeleteTuples("Q", {{"b", "c"}}).ok());
    EXPECT_EQ(store->lsn(), 3u);
    committed = store->kb();
  }
  env.Crash();
  env.RecoverFromCrash();
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env));
  EXPECT_EQ(store->kb(), committed);
  EXPECT_EQ(store->lsn(), 3u);
}

TEST(DurableEngineTest, BadDeltasAreRejectedBeforeTheLog) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  Status unknown = store->InsertTuples("NoSuchRel", {{"a"}});
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  Status bad_arity = store->InsertTuples("Q", {{"a"}});
  EXPECT_EQ(bad_arity.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store->lsn(), 0u);
  EXPECT_EQ(store->kb(), InitialKb());
}

TEST(DurableEngineTest, ManualModeLosesUnsyncedCommitsInACrash) {
  FaultInjectionEnv env;
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env, SyncMode::kManual));
    ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
    ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());
    EXPECT_EQ(store->lsn(), 2u);
    // No Sync: the appends live only in the OS.
  }
  env.Crash();
  env.RecoverFromCrash();
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env, SyncMode::kManual));
  EXPECT_EQ(store->kb(), InitialKb());
  EXPECT_EQ(store->lsn(), 0u);
}

TEST(DurableEngineTest, ManualModeSyncIsADurabilityBarrier) {
  FaultInjectionEnv env;
  Knowledgebase after_first{Schema()};
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env, SyncMode::kManual));
    ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
    after_first = store->kb();
    ASSERT_TRUE(store->Sync().ok());
    ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());  // Unsynced; dies below.
  }
  env.Crash();
  env.RecoverFromCrash();
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env, SyncMode::kManual));
  EXPECT_EQ(store->kb(), after_first);
  EXPECT_EQ(store->lsn(), 1u);
}

TEST(DurableEngineTest, GroupCommitSyncsAtTheInterval) {
  // Interval 2: commit 1 is in the loss window, commit 2 closes the group.
  for (int commits : {1, 2}) {
    FaultInjectionEnv env;
    Knowledgebase committed{Schema()};
    {
      auto store = MustOpen("db", InitialKb(),
                            WithEnv(&env, SyncMode::kGroupCommit, 2));
      ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
      if (commits == 2) ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());
      committed = store->kb();
    }
    env.Crash();
    env.RecoverFromCrash();
    auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                          WithEnv(&env, SyncMode::kGroupCommit, 2));
    if (commits == 1) {
      EXPECT_EQ(store->kb(), InitialKb());
      EXPECT_EQ(store->lsn(), 0u);
    } else {
      EXPECT_EQ(store->kb(), committed);
      EXPECT_EQ(store->lsn(), 2u);
    }
  }
}

TEST(DurableEngineTest, TransientAppendFailureSelfHealsAndRetrySucceeds) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
  Knowledgebase after_first = store->kb();

  // The next WAL append fails outright; the transformation succeeded in
  // memory but must not be acknowledged or retained.
  env.FailAt(1, FaultKind::kFail);
  EXPECT_FALSE(store->Apply("tau{ P(b) }").ok());
  EXPECT_EQ(store->kb(), after_first);
  EXPECT_EQ(store->lsn(), 1u);
  EXPECT_FALSE(store->broken());

  // The retry lands, and a reopen replays exactly both commits.
  ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());
  Knowledgebase committed = store->kb();
  store.reset();
  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), committed);
  EXPECT_EQ(reopened->lsn(), 2u);
}

TEST(DurableEngineTest, ShortWriteIsTruncatedBackOut) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());

  // Half the record's bytes land before the failure: self-heal must cut the
  // torn tail so the next record starts at a clean boundary.
  env.FailAt(1, FaultKind::kShortWrite);
  EXPECT_FALSE(store->Apply("tau{ P(b) }").ok());
  EXPECT_FALSE(store->broken());
  ASSERT_TRUE(store->Apply("tau{ P(c) }").ok());
  Knowledgebase committed = store->kb();
  store.reset();

  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), committed);
  EXPECT_EQ(reopened->lsn(), 2u);
}

TEST(DurableEngineTest, SyncFailureAfterAppendRollsTheRecordBack) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  // Op 1 is the append (succeeds), op 2 the per-commit fsync (fails): the
  // record is whole in the OS but of unknown durability, so it is rolled back.
  env.FailAt(2, FaultKind::kFail);
  EXPECT_FALSE(store->Apply("tau{ P(a) }").ok());
  EXPECT_EQ(store->kb(), InitialKb());
  EXPECT_EQ(store->lsn(), 0u);
  EXPECT_FALSE(store->broken());
  ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
  EXPECT_EQ(store->lsn(), 1u);
}

TEST(DurableEngineTest, CheckpointRotatesTheLogAndCollectsGarbage) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
  ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_TRUE(env.FileExists("db/checkpoint-2"));
  EXPECT_TRUE(env.FileExists("db/wal-2"));
  // The superseded generation is gone.
  EXPECT_FALSE(env.FileExists("db/checkpoint-0"));
  EXPECT_FALSE(env.FileExists("db/wal-0"));

  // Commits continue into the fresh log; recovery starts at the checkpoint.
  ASSERT_TRUE(store->Apply("tau{ Q(a, c) } >> lub").ok());
  Knowledgebase committed = store->kb();
  store.reset();
  env.Crash();
  env.RecoverFromCrash();
  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), committed);
  EXPECT_EQ(reopened->lsn(), 3u);
}

TEST(DurableEngineTest, IdleCheckpointKeepsLaterCommitsRecoverable) {
  // A checkpoint with no commits since the last one reuses its own wal-<lsn>
  // name. The rotation must truncate that file, not append a second header
  // that recovery would read as a corrupt tail — which used to silently drop
  // every commit made after the idle checkpoint.
  FaultInjectionEnv env;
  Knowledgebase committed{Schema()};
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env));
    ASSERT_TRUE(store->Checkpoint().ok());  // Idle: lsn 0 == checkpoint 0.
    ASSERT_TRUE(store->Checkpoint().ok());  // Still idle; twice for good measure.
    ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
    committed = store->kb();
  }
  env.Crash();
  env.RecoverFromCrash();
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env));
  EXPECT_EQ(store->kb(), committed);
  EXPECT_EQ(store->lsn(), 1u);

  // The same reuse happens when commits *after* a checkpoint are followed by
  // an idle one at the same lsn.
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->Apply("tau{ P(b) }").ok());
  committed = store->kb();
  store.reset();
  env.Crash();
  env.RecoverFromCrash();
  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), committed);
  EXPECT_EQ(reopened->lsn(), 2u);
}

TEST(DurableEngineTest, CheckpointAloneMakesManualModeCommitsDurable) {
  FaultInjectionEnv env;
  Knowledgebase committed{Schema()};
  {
    auto store = MustOpen("db", InitialKb(), WithEnv(&env, SyncMode::kManual));
    ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    committed = store->kb();
  }
  env.Crash();
  env.RecoverFromCrash();
  auto store = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                        WithEnv(&env, SyncMode::kManual));
  EXPECT_EQ(store->kb(), committed);
  EXPECT_EQ(store->lsn(), 1u);
}

TEST(DurableEngineTest, BrokenStoreRefusesEverythingUntilReopened) {
  FaultInjectionEnv env;
  auto store = MustOpen("db", InitialKb(), WithEnv(&env));
  ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
  Knowledgebase committed = store->kb();

  // Crash the env out from under the store: the commit fails AND the
  // self-heal fails, which is the terminal state.
  env.Crash();
  EXPECT_FALSE(store->Apply("tau{ P(b) }").ok());
  EXPECT_TRUE(store->broken());
  env.RecoverFromCrash();

  // Even with the env healthy again, a broken store refuses everything.
  Status apply = store->Apply("tau{ P(b) }").status();
  EXPECT_EQ(apply.code(), StatusCode::kIOError);
  EXPECT_EQ(store->InsertTuples("P", {{"b"}}).code(), StatusCode::kIOError);
  EXPECT_EQ(store->Sync().code(), StatusCode::kIOError);
  EXPECT_EQ(store->Checkpoint().code(), StatusCode::kIOError);
  EXPECT_EQ(store->kb(), committed);  // In-memory state is still readable.
  store.reset();

  // A fresh Open re-runs recovery and the store works again.
  auto reopened = MustOpen("db", Knowledgebase(testutil::TestSchema()),
                           WithEnv(&env));
  EXPECT_EQ(reopened->kb(), committed);
  EXPECT_FALSE(reopened->broken());
  EXPECT_TRUE(reopened->Apply("tau{ P(b) }").ok());
}

TEST(DurableEngineTest, WorksOnTheRealFilesystemToo) {
  std::string dir = ::testing::TempDir() + "kbt_durable_engine_test";
  // A previous run's store would otherwise shadow `initial`.
  if (Env::Default()->FileExists(dir)) {
    auto names = Env::Default()->ListDir(dir);
    ASSERT_TRUE(names.ok());
    for (const std::string& name : *names) {
      ASSERT_TRUE(Env::Default()->RemoveFile(dir + "/" + name).ok());
    }
  }
  Knowledgebase committed{Schema()};
  {
    auto store = MustOpen(dir, InitialKb(), StoreOptions());
    ASSERT_TRUE(store->Apply("tau{ P(a) }").ok());
    ASSERT_TRUE(store->InsertTuples("Q", {{"a", "b"}}).ok());
    committed = store->kb();
  }
  auto store = MustOpen(dir, Knowledgebase(testutil::TestSchema()),
                        StoreOptions());
  EXPECT_EQ(store->kb(), committed);
  EXPECT_EQ(store->lsn(), 2u);
}

}  // namespace
}  // namespace kbt::store
