#include "net/frame.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "net/transport.h"

namespace kbt::net {
namespace {

// ---------------------------------------------------------------------------
// Roundtrips

TEST(NetFrameTest, FrameRoundtrip) {
  StatusOr<std::string> frame =
      EncodeFrame(FrameType::kReadRequest, "hello payload", 42);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->size(), kHeaderSize + 13);
  auto header = DecodeHeader(std::string_view(*frame).substr(0, kHeaderSize));
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kReadRequest);
  EXPECT_EQ(header->payload_len, 13u);
  EXPECT_EQ(header->seq, 42u);
  EXPECT_TRUE(VerifyPayload(std::string_view(*frame).substr(0, kHeaderSize),
                            std::string_view(*frame).substr(kHeaderSize))
                  .ok());
}

TEST(NetFrameTest, EncodeRejectsOversizedPayload) {
  std::string big(kMaxPayload + 1, 'x');
  EXPECT_FALSE(EncodeFrame(FrameType::kPing, big).ok());
}

TEST(NetFrameTest, ReadRequestRoundtrip) {
  WireReadRequest r;
  r.antecedents = {"P(a)", "Q(a, b) | P(b)"};
  r.consequent = "P(b)";
  r.modality = 1;
  r.deadline_ms = 1234;
  auto decoded = DecodeReadRequest(EncodeReadRequest(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->antecedents, r.antecedents);
  EXPECT_EQ(decoded->consequent, r.consequent);
  EXPECT_EQ(decoded->modality, r.modality);
  EXPECT_EQ(decoded->deadline_ms, r.deadline_ms);
}

TEST(NetFrameTest, ErrorRoundtripPreservesStatus) {
  Status original = Status::DeadlineExceeded("query cancelled");
  WireError e = ErrorFromStatus(original, 75);
  auto decoded = DecodeError(EncodeError(e));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->retry_after_ms, 75u);
  Status back = StatusFromError(*decoded);
  EXPECT_EQ(back.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(back.message(), "query cancelled");
}

TEST(NetFrameTest, ErrorRoundtripCarriesRedirectHint) {
  WireError e = ErrorFromStatus(Status::ReadOnly("replica is read-only"));
  e.redirect = "10.0.0.7:4100";
  auto decoded = DecodeError(EncodeError(e));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->redirect, "10.0.0.7:4100");
  EXPECT_EQ(StatusFromError(*decoded).code(), StatusCode::kReadOnly);
}

TEST(NetFrameTest, ReplSubscribeRoundtrip) {
  WireReplSubscribe r;
  r.follower_id = "f1";
  r.epoch = 3;
  r.start_lsn = 77;
  r.has_state = 1;
  auto decoded = DecodeReplSubscribe(EncodeReplSubscribe(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->follower_id, "f1");
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->start_lsn, 77u);
  EXPECT_EQ(decoded->has_state, 1u);
}

TEST(NetFrameTest, ReplSubscribeReplyRoundtrip) {
  WireReplSubscribeReply r;
  r.primary_id = "p0";
  r.epoch = 4;
  r.primary_lsn = 120;
  r.horizon_lsn = 100;
  r.need_snapshot = 1;
  r.snapshot_lsn = 110;
  r.epoch_history = {{1, 0}, {2, 50}, {4, 110}};
  auto decoded = DecodeReplSubscribeReply(EncodeReplSubscribeReply(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->primary_id, "p0");
  EXPECT_EQ(decoded->epoch, 4u);
  EXPECT_EQ(decoded->primary_lsn, 120u);
  EXPECT_EQ(decoded->horizon_lsn, 100u);
  EXPECT_EQ(decoded->need_snapshot, 1u);
  EXPECT_EQ(decoded->snapshot_lsn, 110u);
  EXPECT_EQ(decoded->epoch_history, r.epoch_history);
}

TEST(NetFrameTest, ReplFetchAndRecordsRoundtrip) {
  WireReplFetch f;
  f.follower_id = "f2";
  f.epoch = 2;
  f.after_lsn = 41;
  f.wait_ms = 250;
  f.max_records = 16;
  f.max_bytes = 65536;
  auto fd = DecodeReplFetch(EncodeReplFetch(f));
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->after_lsn, 41u);
  EXPECT_EQ(fd->wait_ms, 250u);

  WireReplRecords r;
  r.epoch = 2;
  r.start_lsn = 42;
  r.primary_lsn = 44;
  r.records = {{1, "tau{...}"}, {2, std::string("\x01\x02", 2)}, {3, ""}};
  auto rd = DecodeReplRecords(EncodeReplRecords(r));
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->epoch, 2u);
  EXPECT_EQ(rd->start_lsn, 42u);
  EXPECT_EQ(rd->primary_lsn, 44u);
  EXPECT_EQ(rd->records, r.records);
}

TEST(NetFrameTest, ReplRecordsRejectsBadKindAndOverCapBatch) {
  WireReplRecords r;
  r.records = {{9, "bogus kind"}};
  EXPECT_FALSE(DecodeReplRecords(EncodeReplRecords(r)).ok());
  r.records.clear();
  for (size_t i = 0; i <= kMaxReplBatch; ++i) r.records.emplace_back(1, "x");
  EXPECT_FALSE(DecodeReplRecords(EncodeReplRecords(r)).ok());
}

TEST(NetFrameTest, ReplCkptChunkRoundtripAndOverrunRejected) {
  WireReplCkptChunk c;
  c.lsn = 10;
  c.offset = 4096;
  c.total_size = 9000;
  c.bytes = std::string(1000, 'z');
  auto decoded = DecodeReplCkptChunk(EncodeReplCkptChunk(c));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->total_size, 9000u);
  EXPECT_EQ(decoded->bytes.size(), 1000u);
  // A chunk claiming bytes past its own total size is corrupt.
  c.offset = 8500;
  EXPECT_FALSE(DecodeReplCkptChunk(EncodeReplCkptChunk(c)).ok());
}

TEST(NetFrameTest, StatsReplyRoundtrip) {
  WireStatsReply r;
  r.counters = {{"reads", 7}, {"commits", 3}};
  auto decoded = DecodeStatsReply(EncodeStatsReply(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->counters, r.counters);
}

// ---------------------------------------------------------------------------
// Malformed-header rejection

std::string ValidFrame(std::string_view payload = "abc",
                       FrameType type = FrameType::kApplyRequest) {
  return *EncodeFrame(type, payload, 7);
}

TEST(NetFrameTest, HeaderRejectsBadMagic) {
  std::string f = ValidFrame();
  f[0] ^= 0x1;
  EXPECT_FALSE(DecodeHeader(std::string_view(f).substr(0, kHeaderSize)).ok());
}

TEST(NetFrameTest, HeaderRejectsBadVersion) {
  std::string f = ValidFrame();
  f[4] = 99;
  EXPECT_FALSE(DecodeHeader(std::string_view(f).substr(0, kHeaderSize)).ok());
}

TEST(NetFrameTest, HeaderRejectsUnknownType) {
  std::string f = ValidFrame();
  f[5] = 0;
  EXPECT_FALSE(DecodeHeader(std::string_view(f).substr(0, kHeaderSize)).ok());
  f[5] = 120;
  EXPECT_FALSE(DecodeHeader(std::string_view(f).substr(0, kHeaderSize)).ok());
}

TEST(NetFrameTest, HeaderRejectsHugeLength) {
  // A corrupt length field must be rejected *before* any allocation.
  std::string f = ValidFrame();
  f[8] = static_cast<char>(0xff);
  f[9] = static_cast<char>(0xff);
  f[10] = static_cast<char>(0xff);
  f[11] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeHeader(std::string_view(f).substr(0, kHeaderSize)).ok());
}

TEST(NetFrameTest, CrcCatchesPayloadCorruption) {
  std::string f = ValidFrame("some payload bytes");
  f[kHeaderSize + 3] ^= 0x10;
  EXPECT_FALSE(VerifyPayload(std::string_view(f).substr(0, kHeaderSize),
                             std::string_view(f).substr(kHeaderSize))
                   .ok());
}

// ---------------------------------------------------------------------------
// ReadFrame-level fuzz over an in-memory pipe: the decoder must be total.
// Every malformed stream yields a typed error (or, for a surviving type-byte
// flip, a valid frame) — never a crash, never an oversized allocation.

void FeedAndRead(const std::string& bytes, Status* out_status,
                 uint8_t* out_type, std::string* out_payload) {
  auto [client, server] = MakePipePair();
  ASSERT_TRUE(client->WriteAll(bytes.data(), bytes.size()).ok());
  client->Shutdown();  // EOF after the bytes: a stuck reader would hang here.
  uint16_t seq = 0;
  *out_status = ReadFrame(*server, out_type, out_payload, &seq);
}

TEST(NetFrameFuzzTest, TruncationsAtEveryLengthAreTypedErrors) {
  std::string f = ValidFrame("truncate me at every offset");
  for (size_t len = 0; len < f.size(); ++len) {
    Status s;
    uint8_t type = 0;
    std::string payload;
    FeedAndRead(f.substr(0, len), &s, &type, &payload);
    ASSERT_FALSE(s.ok()) << "truncation at " << len << " decoded";
    // A cut before the first byte is a clean EOF; anything else is either a
    // torn frame (kDataLoss) — never a success.
    ASSERT_TRUE(s.code() == StatusCode::kUnavailable ||
                s.code() == StatusCode::kDataLoss)
        << "truncation at " << len << ": " << s.ToString();
    if (len > 0) EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "at " << len;
  }
}

TEST(NetFrameFuzzTest, SingleByteFlipsNeverYieldTheOriginalFrame) {
  const std::string payload = "P(a) & Q(a, b)";
  std::string f = ValidFrame(payload, FrameType::kReadRequest);
  for (size_t i = 0; i < f.size(); ++i) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      std::string corrupted = f;
      corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << bit));
      Status s;
      uint8_t type = 0;
      std::string got;
      FeedAndRead(corrupted, &s, &type, &got);
      if (s.ok()) {
        // Only a type-byte or seq-byte flip can survive (they are not under
        // the CRC); the payload must still be intact, so the answer cannot
        // be silently wrong.
        EXPECT_TRUE(i == 5 || i == 6 || i == 7)
            << "flip at byte " << i << " bit " << int(bit) << " decoded OK";
        EXPECT_EQ(got, payload);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kDataLoss)
            << "flip at byte " << i << ": " << s.ToString();
      }
    }
  }
}

TEST(NetFrameFuzzTest, RandomGarbageStreamsAreTypedErrors) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> length(0, 200);
  for (int round = 0; round < 500; ++round) {
    std::string garbage(length(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte(rng));
    Status s;
    uint8_t type = 0;
    std::string payload;
    FeedAndRead(garbage, &s, &type, &payload);
    // Random bytes form a valid frame with probability ~2^-64 (magic + CRC);
    // in practice: always a typed error.
    ASSERT_FALSE(s.ok()) << "round " << round;
    ASSERT_TRUE(s.code() == StatusCode::kUnavailable ||
                s.code() == StatusCode::kDataLoss)
        << s.ToString();
  }
}

TEST(NetFrameFuzzTest, RandomPayloadMutationsOfValidFramesAreCaught) {
  std::mt19937 rng(987654);
  WireReadRequest request;
  request.antecedents = {"P(a)", "Q(a, b)"};
  request.consequent = "P(b) | Q(b, a)";
  std::string f = *EncodeFrame(FrameType::kReadRequest,
                               EncodeReadRequest(request), 3);
  std::uniform_int_distribution<size_t> pos(kHeaderSize, f.size() - 1);
  std::uniform_int_distribution<int> byte(1, 255);
  for (int round = 0; round < 300; ++round) {
    std::string corrupted = f;
    corrupted[pos(rng)] ^= static_cast<char>(byte(rng));
    Status s;
    uint8_t type = 0;
    std::string payload;
    FeedAndRead(corrupted, &s, &type, &payload);
    ASSERT_FALSE(s.ok()) << "payload corruption survived CRC in round "
                         << round;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  }
}

TEST(NetFrameFuzzTest, MessageDecodersRejectRandomPayloads) {
  // Even when a frame passes CRC (an attacker can fix up the CRC), the typed
  // decoders must reject malformed bodies instead of crashing.
  std::mt19937 rng(13579);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> length(0, 64);
  for (int round = 0; round < 500; ++round) {
    std::string garbage(length(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte(rng));
    // Exercise every decoder; none may crash or over-allocate.
    (void)DecodeReadRequest(garbage);
    (void)DecodeReadReply(garbage);
    (void)DecodeApplyRequest(garbage);
    (void)DecodeApplyReply(garbage);
    (void)DecodeError(garbage);
    (void)DecodeStatsReply(garbage);
    (void)DecodeReplSubscribe(garbage);
    (void)DecodeReplSubscribeReply(garbage);
    (void)DecodeReplFetch(garbage);
    (void)DecodeReplRecords(garbage);
    (void)DecodeReplCkptFetch(garbage);
    (void)DecodeReplCkptChunk(garbage);
  }
  SUCCEED();
}

TEST(NetFrameFuzzTest, ChainDepthCapEnforcedAtDecode) {
  WireReadRequest r;
  r.consequent = "P(a)";
  for (size_t i = 0; i <= kMaxChainDepth; ++i) r.antecedents.push_back("P(a)");
  auto decoded = DecodeReadRequest(EncodeReadRequest(r));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace kbt::net
