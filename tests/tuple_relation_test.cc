#include <gtest/gtest.h>

#include "rel/relation.h"
#include "rel/tuple.h"

namespace kbt {
namespace {

TEST(TupleTest, BasicsAndZeroAry) {
  Tuple empty;
  EXPECT_EQ(empty.arity(), 0u);
  Tuple ab = Tuple::Of({"a", "b"});
  EXPECT_EQ(ab.arity(), 2u);
  EXPECT_EQ(ab[0], Name("a"));
  EXPECT_EQ(ab[1], Name("b"));
  EXPECT_EQ(ab.ToString(), "(a, b)");
  EXPECT_EQ(empty.ToString(), "()");
}

TEST(TupleTest, EqualityAndOrder) {
  Tuple ab = Tuple::Of({"a", "b"});
  Tuple ab2 = Tuple::Of({"a", "b"});
  Tuple ac = Tuple::Of({"a", "c"});
  EXPECT_EQ(ab, ab2);
  EXPECT_NE(ab, ac);
  EXPECT_EQ(ab.Hash(), ab2.Hash());
  EXPECT_TRUE(ab < ac || ac < ab);
}

TEST(TupleTest, Project) {
  Tuple abc = Tuple::Of({"a", "b", "c"});
  Tuple proj = abc.Project({2, 0});
  EXPECT_EQ(proj, (Tuple::Of({"c", "a"})));
  EXPECT_EQ(abc.Project({1, 1}), (Tuple::Of({"b", "b"})));
}

TEST(RelationTest, ConstructionSortsAndDedups) {
  Relation r(2, {Tuple::Of({"b", "c"}), Tuple::Of({"a", "b"}), Tuple::Of({"b", "c"})});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple::Of({"a", "b"})));
  EXPECT_TRUE(r.Contains(Tuple::Of({"b", "c"})));
  EXPECT_FALSE(r.Contains(Tuple::Of({"c", "b"})));
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
}

TEST(RelationTest, WithAndWithoutTuple) {
  Relation r(1);
  Relation r1 = r.WithTuple(Tuple::Of({"a"}));
  EXPECT_TRUE(r.empty());  // Original untouched.
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1.WithTuple(Tuple::Of({"a"})), r1);  // Idempotent.
  Relation r0 = r1.WithoutTuple(Tuple::Of({"a"}));
  EXPECT_TRUE(r0.empty());
  EXPECT_EQ(r0.WithoutTuple(Tuple::Of({"a"})), r0);
}

TEST(RelationTest, SetOperations) {
  Relation a(1, {Tuple::Of({"a"}), Tuple::Of({"b"})});
  Relation b(1, {Tuple::Of({"b"}), Tuple::Of({"c"})});
  EXPECT_EQ(a.Union(b), Relation(1, {Tuple::Of({"a"}), Tuple::Of({"b"}),
                                     Tuple::Of({"c"})}));
  EXPECT_EQ(a.Intersect(b), Relation(1, {Tuple::Of({"b"})}));
  EXPECT_EQ(a.Difference(b), Relation(1, {Tuple::Of({"a"})}));
  EXPECT_EQ(a.SymmetricDifference(b),
            Relation(1, {Tuple::Of({"a"}), Tuple::Of({"c"})}));
}

TEST(RelationTest, SymmetricDifferenceProperties) {
  Relation a(1, {Tuple::Of({"a"}), Tuple::Of({"b"})});
  Relation b(1, {Tuple::Of({"b"}), Tuple::Of({"c"})});
  // A Δ A = ∅ and A Δ ∅ = A — the two identities Definition 2.1's two-stage
  // comparison relies on.
  EXPECT_TRUE(a.SymmetricDifference(a).empty());
  EXPECT_EQ(a.SymmetricDifference(Relation(1)), a);
  EXPECT_EQ(a.SymmetricDifference(b), b.SymmetricDifference(a));
}

TEST(RelationTest, SubsetChecks) {
  Relation a(1, {Tuple::Of({"a"})});
  Relation ab(1, {Tuple::Of({"a"}), Tuple::Of({"b"})});
  EXPECT_TRUE(a.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(Relation(1).IsSubsetOf(a));
}

TEST(RelationTest, ZeroAryRelation) {
  Relation empty(0);
  EXPECT_TRUE(empty.empty());
  Relation holds = empty.WithTuple(Tuple());
  EXPECT_EQ(holds.size(), 1u);
  EXPECT_TRUE(holds.Contains(Tuple()));
  EXPECT_EQ(holds.ToString(), "{()}");
}

TEST(RelationTest, CollectValues) {
  Relation r(2, {Tuple::Of({"a", "b"}), Tuple::Of({"b", "c"})});
  std::vector<Value> values;
  r.CollectValues(&values);
  EXPECT_EQ(values.size(), 4u);
}

}  // namespace
}  // namespace kbt
