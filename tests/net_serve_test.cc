#include "net/server.h"

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/transport.h"
#include "serve/server.h"
#include "store/fault_env.h"

namespace kbt::net {
namespace {

Knowledgebase SmallKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 2}},
                          {{"P", {{"a"}}}, {"Q", {{"a", "b"}}}});
}

/// One serve::Server + as many in-memory connections as the test opens. Each
/// Connect() spawns a thread running the production ServeConnection loop on
/// the server end of a fresh pipe and hands back the client end. Destroying
/// a client end closes the pipe, so the server thread exits and joins.
class PipeHarness {
 public:
  explicit PipeHarness(
      NetServerOptions options = NetServerOptions(),
      serve::ServerOptions serve_options = serve::ServerOptions())
      : PipeHarness(std::make_unique<serve::Server>(SmallKb(), serve_options),
                    options) {}

  PipeHarness(std::unique_ptr<serve::Server> owned,
              NetServerOptions options = NetServerOptions())
      : server_(std::move(owned)), net_(server_.get(), options) {}

  ~PipeHarness() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  /// Opens a connection. With `server_fault` set, the server end is wrapped
  /// in a FaultTransport and a pointer to it returned (owned by the server
  /// thread; valid until that connection closes and the harness is joined).
  std::unique_ptr<Transport> Connect(FaultTransport** server_fault = nullptr) {
    auto [client_end, server_end] = MakePipePair();
    std::shared_ptr<Transport> server_shared;
    if (server_fault != nullptr) {
      auto fault = std::make_shared<FaultTransport>(std::move(server_end));
      *server_fault = fault.get();
      server_shared = std::move(fault);
    } else {
      server_shared = std::move(server_end);
    }
    threads_.emplace_back(
        [this, t = server_shared] { net_.ServeConnection(*t); });
    return client_end;
  }

  Client MakeClient() {
    ClientOptions options;
    options.sleep_on_backoff = false;  // Deterministic, instant retries.
    return Client(
        [this] { return StatusOr<std::unique_ptr<Transport>>(Connect()); },
        options);
  }

  serve::Server& server() { return *server_; }
  NetServer& net() { return net_; }

 private:
  std::unique_ptr<serve::Server> server_;
  NetServer net_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Protocol basics over the production frame loop

TEST(NetServeTest, PingPong) {
  PipeHarness h;
  Client client = h.MakeClient();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServeTest, ReadAndApplyEndToEnd) {
  PipeHarness h;
  Client client = h.MakeClient();

  auto before = client.Read({}, "P(b)");
  ASSERT_TRUE(before.ok()) << before.status().message();
  EXPECT_FALSE(before->holds);
  EXPECT_EQ(before->snapshot_version, 0u);

  auto version = client.Apply("tau{P(b)}");
  ASSERT_TRUE(version.ok()) << version.status().message();
  EXPECT_EQ(*version, 1u);

  auto after = client.Read({}, "P(b)");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->holds);
  EXPECT_EQ(after->snapshot_version, 1u);
}

TEST(NetServeTest, CounterfactualReadOverWire) {
  PipeHarness h;
  Client client = h.MakeClient();
  // Hypothetically insert P(b); the snapshot itself is never modified.
  auto result = client.Read({"P(b)"}, "P(b) & P(a)");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->holds);
  auto unchanged = client.Read({}, "P(b)");
  ASSERT_TRUE(unchanged.ok());
  EXPECT_FALSE(unchanged->holds);
}

TEST(NetServeTest, SemanticErrorKeepsConnectionUsable) {
  PipeHarness h;
  Client client = h.MakeClient();
  auto bad = client.Read({}, "P(a");  // Parse error.
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_EQ(client.last_attempts(), 1u);  // Semantic errors are not retried.
  // Same connection still serves.
  auto good = client.Read({}, "P(a)");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->holds);
}

TEST(NetServeTest, MalformedFrameGetsTypedErrorThenClose) {
  PipeHarness h;
  std::unique_ptr<Transport> raw = h.Connect();
  std::string garbage = "this is not a frame at all, not even close!";
  ASSERT_TRUE(raw->WriteAll(garbage.data(), garbage.size()).ok());
  uint8_t type = 0;
  std::string payload;
  Status reply = ReadFrame(*raw, &type, &payload);
  ASSERT_TRUE(reply.ok()) << reply.ToString();
  EXPECT_EQ(static_cast<FrameType>(type), FrameType::kError);
  auto e = DecodeError(payload);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(StatusFromError(*e).code(), StatusCode::kDataLoss);
  // Then the connection closes.
  Status eof = ReadFrame(*raw, &type, &payload);
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(h.net().net_stats().malformed_frames, 1u);
}

TEST(NetServeTest, ReplyFrameTypeAtServerIsProtocolViolation) {
  PipeHarness h;
  std::unique_ptr<Transport> raw = h.Connect();
  ASSERT_TRUE(WriteFrame(*raw, static_cast<uint8_t>(FrameType::kReadReply),
                         EncodeReadReply({}), 1)
                  .ok());
  uint8_t type = 0;
  std::string payload;
  Status reply = ReadFrame(*raw, &type, &payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(static_cast<FrameType>(type), FrameType::kError);
  Status eof = ReadFrame(*raw, &type, &payload);
  EXPECT_FALSE(eof.ok());
}

TEST(NetServeTest, DuplicatedRequestFrameExecutesOnce) {
  PipeHarness h;
  std::unique_ptr<Transport> raw = h.Connect();
  // The same apply frame twice (a retransmission-style duplicate): the
  // server must execute it once and send one reply — at-most-once per seq.
  std::string frame = *EncodeFrame(FrameType::kApplyRequest,
                                   EncodeApplyRequest({"tau{P(b)}"}), 5);
  ASSERT_TRUE(raw->WriteAll(frame.data(), frame.size()).ok());
  ASSERT_TRUE(raw->WriteAll(frame.data(), frame.size()).ok());
  // Follow with a ping so a (wrong) second apply reply would be observable.
  ASSERT_TRUE(
      WriteFrame(*raw, static_cast<uint8_t>(FrameType::kPing), "", 6).ok());

  uint8_t type = 0;
  std::string payload;
  uint16_t seq = 0;
  ASSERT_TRUE(ReadFrame(*raw, &type, &payload, &seq).ok());
  EXPECT_EQ(static_cast<FrameType>(type), FrameType::kApplyReply);
  EXPECT_EQ(seq, 5u);
  ASSERT_TRUE(ReadFrame(*raw, &type, &payload, &seq).ok());
  EXPECT_EQ(static_cast<FrameType>(type), FrameType::kPong);
  EXPECT_EQ(seq, 6u);
  EXPECT_EQ(h.server().stats().commits, 1u);
}

TEST(NetServeTest, StatsOverWireReflectServerCounters) {
  PipeHarness h;
  Client client = h.MakeClient();
  ASSERT_TRUE(client.Apply("tau{P(b)}").ok());
  ASSERT_TRUE(client.Read({}, "P(b)").ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  uint64_t commits = 0, reads = 0;
  for (const auto& [name, value] : stats->counters) {
    if (name == "commits") commits = value;
    if (name == "reads") reads = value;
  }
  EXPECT_EQ(commits, 1u);
  EXPECT_GE(reads, 1u);
}

// ---------------------------------------------------------------------------
// Overload control

TEST(NetServeTest, InFlightCapRejectsEarlyWithRetryAfter) {
  NetServerOptions options;
  options.max_in_flight = 1;
  options.retry_after_ms = 123;
  PipeHarness h(options);

  // Connection A's reply write is delayed, so A holds the single in-flight
  // slot (the slot is released only after the reply is written). B's request
  // arriving meanwhile must be rejected early with the retry-after hint —
  // and B's connection stays usable.
  FaultTransport* fault = nullptr;
  std::unique_ptr<Transport> a = h.Connect(&fault);
  fault->FailWriteAt(0, NetFaultKind::kDelay,
                     std::chrono::milliseconds(400));
  WireReadRequest read;
  read.consequent = "P(a)";
  ASSERT_TRUE(WriteFrame(*a, static_cast<uint8_t>(FrameType::kReadRequest),
                         EncodeReadRequest(read), 1)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::unique_ptr<Transport> b = h.Connect();
  ASSERT_TRUE(WriteFrame(*b, static_cast<uint8_t>(FrameType::kReadRequest),
                         EncodeReadRequest(read), 1)
                  .ok());
  uint8_t type = 0;
  std::string payload;
  ASSERT_TRUE(ReadFrame(*b, &type, &payload).ok());
  ASSERT_EQ(static_cast<FrameType>(type), FrameType::kError);
  auto e = DecodeError(payload);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(StatusFromError(*e).code(), StatusCode::kUnavailable);
  EXPECT_EQ(e->retry_after_ms, 123u);

  // B's connection survived the reject.
  ASSERT_TRUE(
      WriteFrame(*b, static_cast<uint8_t>(FrameType::kPing), "", 2).ok());
  ASSERT_TRUE(ReadFrame(*b, &type, &payload).ok());
  EXPECT_EQ(static_cast<FrameType>(type), FrameType::kPong);

  // A's delayed reply still arrives, and it is correct.
  ASSERT_TRUE(ReadFrame(*a, &type, &payload).ok());
  ASSERT_EQ(static_cast<FrameType>(type), FrameType::kReadReply);
  auto reply = DecodeReadReply(payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->holds);
  EXPECT_GE(h.net().net_stats().requests_rejected, 1u);
  EXPECT_EQ(fault->faults_fired(), 1u);
}

TEST(NetServeTest, ClientBacksOffOnRejectAndSucceeds) {
  NetServerOptions options;
  options.max_in_flight = 1;
  PipeHarness h(options);

  FaultTransport* fault = nullptr;
  std::unique_ptr<Transport> a = h.Connect(&fault);
  fault->FailWriteAt(0, NetFaultKind::kDelay,
                     std::chrono::milliseconds(300));
  WireReadRequest read;
  read.consequent = "P(a)";
  ASSERT_TRUE(WriteFrame(*a, static_cast<uint8_t>(FrameType::kReadRequest),
                         EncodeReadRequest(read), 1)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The client library sees the typed reject and backs off exponentially
  // until the slot frees up (~300 ms): real sleeps, generous attempt cap.
  ClientOptions copts;
  copts.max_attempts = 20;
  copts.initial_backoff_ms = 25;
  Client client(
      [&h] { return StatusOr<std::unique_ptr<Transport>>(h.Connect()); },
      copts);
  auto result = client.Read({}, "P(a)");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->holds);
  EXPECT_GT(client.last_attempts(), 1u) << "the reject path never fired";

  uint8_t type = 0;
  std::string payload;
  ASSERT_TRUE(ReadFrame(*a, &type, &payload).ok());  // A finishes too.
}

TEST(NetServeTest, DrainingServerRejectsApplies) {
  PipeHarness h;
  std::unique_ptr<Transport> raw = h.Connect();
  // Flip the drain token directly (Shutdown would also join the harness
  // threads; here only the reject path is under test).
  const_cast<CancelToken&>(h.net().drain_token()).Cancel();
  Status write =
      WriteFrame(*raw, static_cast<uint8_t>(FrameType::kApplyRequest),
                 EncodeApplyRequest({"tau{P(b)}"}), 9);
  if (write.ok()) {
    uint8_t type = 0;
    std::string payload;
    Status reply = ReadFrame(*raw, &type, &payload);
    // Either a typed kUnavailable reject, or the frame loop observed the
    // cancelled token first and closed. Never a successful apply.
    if (reply.ok()) {
      ASSERT_EQ(static_cast<FrameType>(type), FrameType::kError);
      auto e = DecodeError(payload);
      ASSERT_TRUE(e.ok());
      EXPECT_EQ(StatusFromError(*e).code(), StatusCode::kUnavailable);
      EXPECT_GT(e->retry_after_ms, 0u);
    }
  }
  EXPECT_EQ(h.server().stats().commits, 0u);
}

// ---------------------------------------------------------------------------
// Live TCP: connection reaping, shutdown agreement, dial timeout hygiene.
// The pipe harness bypasses the accept loop, so these run over real sockets.

int CountOpenFds() {
  int count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;  // Includes ".", "..", and the dirfd itself — constant noise.
}

/// Polls `pred` until true or ~5 s elapse.
template <typename Pred>
bool EventuallyTrue(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

Status PingOnce(Transport& t, uint16_t seq) {
  KBT_RETURN_IF_ERROR(
      WriteFrame(t, static_cast<uint8_t>(FrameType::kPing), "", seq));
  uint8_t type = 0;
  std::string payload;
  KBT_RETURN_IF_ERROR(ReadFrame(t, &type, &payload));
  if (static_cast<FrameType>(type) != FrameType::kPong) {
    return Status::Internal("expected pong");
  }
  return Status::OK();
}

TEST(NetServeTcpTest, ClosedConnectionsReleaseFdsAndThreads) {
  serve::Server server(SmallKb(), serve::ServerOptions());
  NetServer net(&server, NetServerOptions());
  ASSERT_TRUE(net.Start().ok());

  // Warm-up connection so lazy one-time allocations don't skew the baseline.
  {
    auto warm = DialTcp("127.0.0.1", net.port());
    ASSERT_TRUE(warm.ok()) << warm.status().message();
    ASSERT_TRUE(PingOnce(**warm, 1).ok());
  }
  ASSERT_TRUE(EventuallyTrue(
      [&] { return net.net_stats().open_connections == 0; }));
  int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  constexpr int kConnections = 16;
  for (int i = 0; i < kConnections; ++i) {
    auto t = DialTcp("127.0.0.1", net.port());
    ASSERT_TRUE(t.ok()) << t.status().message();
    ASSERT_TRUE(PingOnce(**t, 1).ok());
    // The transport is destroyed here: the peer closes, the worker exits.
  }

  // Every server-side socket closes when its worker exits — NOT at shutdown.
  ASSERT_TRUE(EventuallyTrue(
      [&] { return net.net_stats().open_connections == 0; }));
  EXPECT_LE(CountOpenFds(), baseline + 1)
      << "closed connections are leaking file descriptors";

  // Exited workers are joined by the accept loop, not hoarded until
  // Shutdown: one more connection wakes the loop, whose pre-accept sweep
  // reaps all earlier handles.
  auto wake = DialTcp("127.0.0.1", net.port());
  ASSERT_TRUE(wake.ok());
  ASSERT_TRUE(PingOnce(**wake, 1).ok());
  EXPECT_TRUE(EventuallyTrue([&] {
    return net.net_stats().connections_reaped >=
           static_cast<uint64_t>(kConnections);
  })) << "accept loop never joined finished workers; reaped = "
      << net.net_stats().connections_reaped;

  EXPECT_TRUE(net.Shutdown().ok());
  EXPECT_EQ(net.net_stats().open_connections, 0u);
}

TEST(NetServeTcpTest, ConcurrentShutdownCallersObserveSameStatus) {
  serve::Server server(SmallKb(), serve::ServerOptions());
  NetServer net(&server, NetServerOptions());
  ASSERT_TRUE(net.Start().ok());
  // Both callers must return the same drain result (the store-sync status),
  // whichever of them wins the race to run the drain.
  Status a, b;
  std::thread t1([&] { a = net.Shutdown(); });
  std::thread t2([&] { b = net.Shutdown(); });
  t1.join();
  t2.join();
  EXPECT_TRUE(a.ok()) << a.ToString();
  EXPECT_EQ(a.code(), b.code());
  EXPECT_EQ(a.message(), b.message());
}

TEST(NetServeTcpTest, DialConnectTimeoutDoesNotLeakIntoWrites) {
  serve::Server server(SmallKb(), serve::ServerOptions());
  NetServer net(&server, NetServerOptions());
  ASSERT_TRUE(net.Start().ok());
  // connect_timeout 3 s, write_timeout 0 ("block forever"): after the dial,
  // SO_SNDTIMEO must be cleared, not left at the connect budget.
  auto t = DialTcp("127.0.0.1", net.port(), /*connect_timeout_ms=*/3000,
                   /*read_timeout_ms=*/0, /*write_timeout_ms=*/0);
  ASSERT_TRUE(t.ok()) << t.status().message();
  int fd = static_cast<SocketTransport*>(t->get())->fd();
  struct timeval tv;
  socklen_t len = sizeof(tv);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, &len), 0);
  EXPECT_EQ(tv.tv_sec, 0);
  EXPECT_EQ(tv.tv_usec, 0);
  EXPECT_TRUE(net.Shutdown().ok());
}

// ---------------------------------------------------------------------------
// Durable drain: acknowledged commits survive a crash after Shutdown.

TEST(NetServeDrainTest, AcknowledgedCommitsSurviveCrashAfterDrain) {
  // Matrix over sync modes: in kEveryCommit the WAL write is durable before
  // the ack; in kManual only the drain's Sync makes it durable — either way,
  // after a clean Shutdown every acknowledged commit must be recoverable.
  for (store::SyncMode mode :
       {store::SyncMode::kEveryCommit, store::SyncMode::kManual}) {
    store::FaultInjectionEnv env;
    store::StoreOptions store_options;
    store_options.env = &env;
    store_options.sync_mode = mode;

    uint64_t acked = 0;
    {
      auto server = serve::Server::OpenDurable("db", SmallKb(), store_options);
      ASSERT_TRUE(server.ok()) << server.status().message();
      PipeHarness h(std::move(*server));
      {
        Client client = h.MakeClient();
        for (int i = 0; i < 3; ++i) {
          auto version = client.Apply("tau{P(b)}");
          ASSERT_TRUE(version.ok()) << version.status().message();
          acked = *version;
        }
      }
      Status drained = h.net().Shutdown();
      ASSERT_TRUE(drained.ok()) << drained.ToString();
    }
    // The process dies after the drain; whatever was not fsynced is gone.
    env.Crash();
    env.RecoverFromCrash();

    auto reopened = serve::Server::OpenDurable("db", SmallKb(), store_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    EXPECT_EQ((*reopened)->store()->lsn(), acked)
        << "sync mode " << static_cast<int>(mode);
    auto session = (*reopened)->StartSession();
    auto holds = session->Holds("P(b)");
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(holds->holds);
  }
}

}  // namespace
}  // namespace kbt::net
