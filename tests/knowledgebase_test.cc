#include <gtest/gtest.h>

#include "core/engine.h"
#include "rel/knowledgebase.h"

namespace kbt {
namespace {

Database Db(std::initializer_list<std::initializer_list<std::string_view>> tuples) {
  return *MakeDatabase({{"R", 2}}, {{"R", tuples}});
}

TEST(KnowledgebaseTest, FromDatabasesDedupsAndSorts) {
  Database a = Db({{"a", "b"}});
  Database b = Db({{"b", "c"}});
  auto kb = Knowledgebase::FromDatabases({b, a, a});
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->size(), 2u);
  EXPECT_TRUE(kb->Contains(a));
  EXPECT_TRUE(kb->Contains(b));
}

TEST(KnowledgebaseTest, MixedSchemasRejected) {
  Database a = Db({{"a", "b"}});
  Database other = *MakeDatabase({{"S", 1}}, {});
  EXPECT_FALSE(Knowledgebase::FromDatabases({a, other}).ok());
}

TEST(KnowledgebaseTest, EmptyVsSingletonEmptyDatabase) {
  // An empty kb (inconsistent: no possible worlds) is NOT the kb containing one
  // empty database.
  Knowledgebase none(*Schema::Of({{"R", 2}}));
  Knowledgebase one = Knowledgebase::Singleton(Db({}));
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_NE(none, one);
}

TEST(KnowledgebaseTest, GlbLubMatchPaperExample) {
  // §2: kb = {(<{a1a2, a1a4}>), (<{a1a4, a2a3}>)};
  // ⊓(kb) = {<{a1a4}>}, ⊔(kb) = {<{a1a2, a2a3, a1a4}>}.
  Database d1 = Db({{"a1", "a2"}, {"a1", "a4"}});
  Database d2 = Db({{"a1", "a4"}, {"a2", "a3"}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({d1, d2});
  Knowledgebase glb = kb.Glb();
  ASSERT_EQ(glb.size(), 1u);
  EXPECT_EQ(*glb.databases()[0].RelationFor("R"), MakeRelation(2, {{"a1", "a4"}}));
  Knowledgebase lub = kb.Lub();
  ASSERT_EQ(lub.size(), 1u);
  EXPECT_EQ(*lub.databases()[0].RelationFor("R"),
            MakeRelation(2, {{"a1", "a2"}, {"a1", "a4"}, {"a2", "a3"}}));
}

TEST(KnowledgebaseTest, GlbLubOnEmptyAndSingleton) {
  Knowledgebase none(*Schema::Of({{"R", 2}}));
  EXPECT_TRUE(none.Glb().empty());
  EXPECT_TRUE(none.Lub().empty());
  Knowledgebase one = Knowledgebase::Singleton(Db({{"a", "b"}}));
  EXPECT_EQ(one.Glb(), one);
  EXPECT_EQ(one.Lub(), one);
}

TEST(KnowledgebaseTest, UnionWith) {
  Knowledgebase kb1 = Knowledgebase::Singleton(Db({{"a", "b"}}));
  Knowledgebase kb2 = *Knowledgebase::FromDatabases({Db({{"a", "b"}}), Db({})});
  Knowledgebase u = *kb1.UnionWith(kb2);
  EXPECT_EQ(u.size(), 2u);
  // Empty operands.
  Knowledgebase none;
  EXPECT_EQ(*none.UnionWith(kb1), kb1);
  EXPECT_EQ(*kb1.UnionWith(none), kb1);
}

TEST(KnowledgebaseTest, ProjectTo) {
  Database db = *MakeDatabase({{"R", 2}, {"S", 1}},
                              {{"R", {{"a", "b"}}}, {"S", {{"c"}}}});
  Knowledgebase kb = Knowledgebase::Singleton(db);
  Knowledgebase p = *kb.ProjectTo({Name("S")});
  EXPECT_EQ(p.schema().size(), 1u);
  EXPECT_EQ(p.databases()[0].RelationFor("S")->size(), 1u);
  // Projection can merge worlds that agree on the kept relations.
  Database db2 = *MakeDatabase({{"R", 2}, {"S", 1}},
                               {{"R", {{"x", "y"}}}, {"S", {{"c"}}}});
  Knowledgebase two = *Knowledgebase::FromDatabases({db, db2});
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(two.ProjectTo({Name("S")})->size(), 1u);
}

TEST(KnowledgebaseTest, ExtendTo) {
  Knowledgebase kb = Knowledgebase::Singleton(Db({{"a", "b"}}));
  Schema super = *Schema::Of({{"R", 2}, {"T", 1}});
  Knowledgebase big = *kb.ExtendTo(super);
  EXPECT_EQ(big.schema(), super);
  EXPECT_TRUE(big.databases()[0].RelationFor("T")->empty());
}

}  // namespace
}  // namespace kbt
