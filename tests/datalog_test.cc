#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "datalog/analysis.h"
#include "datalog/eval.h"
#include "datalog/from_fo.h"
#include "datalog/parser.h"
#include "logic/parser.h"
#include "testutil.h"

namespace kbt::datalog {
namespace {

TEST(DatalogParserTest, FactsRulesConstraintsNegation) {
  auto program = ParseProgram(R"(
    % transitive closure with extras
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    distinct(X, Y) :- node(X), node(Y), X != Y.
    sink(X) :- node(X), !edge(X, X), X = X.
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->rules.size(), 5u);
  EXPECT_TRUE(program->rules[0].body.empty());
  EXPECT_EQ(program->rules[2].body.size(), 2u);
  EXPECT_EQ(program->rules[3].constraints.size(), 1u);
  EXPECT_TRUE(program->rules[3].constraints[0].negated);
  EXPECT_TRUE(program->rules[4].body[1].negated);
  // Uppercase = variable, lowercase = constant.
  EXPECT_TRUE(program->rules[1].head.args[0].is_variable());
  EXPECT_TRUE(program->rules[0].head.args[0].is_constant());
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)").ok());       // Missing final dot.
  EXPECT_FALSE(ParseProgram("p(X) q(X).").ok());          // Missing ':-'.
  EXPECT_FALSE(ParseProgram("p(X) :- X < Y.").ok());      // Unknown operator.
  EXPECT_TRUE(ParseProgram("").ok());                      // Empty program fine.
}

TEST(DatalogAnalysisTest, SafetyViolationsDetected) {
  // Head variable not in body.
  EXPECT_FALSE(CheckSafety(*ParseProgram("p(X, Y) :- q(X).")).ok());
  // Variable only in negated literal.
  EXPECT_FALSE(CheckSafety(*ParseProgram("p(X) :- q(X), !r(Y).")).ok());
  // Variable only in constraint.
  EXPECT_FALSE(CheckSafety(*ParseProgram("p(X) :- q(X), X != Y.")).ok());
  // Fact with variable.
  EXPECT_FALSE(CheckSafety(*ParseProgram("p(X).")).ok());
  EXPECT_TRUE(CheckSafety(*ParseProgram("p(X) :- q(X), !r(X), X != a.")).ok());
}

TEST(DatalogAnalysisTest, ProgramSchemaAndArityConflicts) {
  Schema s = *ProgramSchema(*ParseProgram("p(X) :- q(X, Y)."));
  EXPECT_EQ(*s.ArityOf(Name("p")), 1u);
  EXPECT_EQ(*s.ArityOf(Name("q")), 2u);
  EXPECT_FALSE(ProgramSchema(*ParseProgram("p(X) :- p(X, X).")).ok());
}

TEST(DatalogAnalysisTest, StratificationAcceptsAndOrdersNegation) {
  auto strata = Stratify(*ParseProgram(R"(
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    blocked(X) :- node(X), !reach(X).
  )"));
  ASSERT_TRUE(strata.ok());
  ASSERT_EQ(strata->size(), 2u);
  EXPECT_EQ((*strata)[0], std::vector<Symbol>{Name("reach")});
  EXPECT_EQ((*strata)[1], std::vector<Symbol>{Name("blocked")});
}

TEST(DatalogAnalysisTest, CyclicNegationRejected) {
  auto strata = Stratify(*ParseProgram("p(X) :- n(X), !q(X). q(X) :- n(X), !p(X)."));
  EXPECT_EQ(strata.status().code(), StatusCode::kInvalidArgument);
}

Database GraphDb(const testutil::Graph& g) {
  return *Database::Create(*Schema::Of({{"edge", 2}}), {testutil::EdgeRelation(g)});
}

TEST(DatalogEvalTest, TransitiveClosureMatchesWarshall) {
  Program tc = *ParseProgram(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    testutil::Graph g = testutil::RandomGraph(7, 0.25, &rng);
    Database out = *Evaluate(tc, GraphDb(g));
    EXPECT_EQ(testutil::DecodeEdges(*out.RelationFor("path")),
              testutil::TransitiveClosure(g.edges, g.n));
    // EDB unchanged.
    EXPECT_EQ(testutil::DecodeEdges(*out.RelationFor("edge")), g.edges);
  }
}

TEST(DatalogEvalTest, NaiveAndSeminaiveAgree) {
  Program tc = *ParseProgram(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
  std::mt19937_64 rng(77);
  EvalOptions naive;
  naive.use_seminaive = false;
  for (int trial = 0; trial < 6; ++trial) {
    testutil::Graph g = testutil::RandomGraph(6, 0.3, &rng);
    EXPECT_EQ(*Evaluate(tc, GraphDb(g)), *Evaluate(tc, GraphDb(g), naive));
  }
}

TEST(DatalogEvalTest, SemiNaiveDoesLessRederivation) {
  // A long chain: semi-naive derives each path once; naive re-derives all paths
  // every round.
  testutil::Graph chain;
  chain.n = 24;
  for (int i = 0; i + 1 < chain.n; ++i) chain.edges.insert({i, i + 1});
  Program tc = *ParseProgram(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
  EvalStats semi_stats, naive_stats;
  EvalOptions naive;
  naive.use_seminaive = false;
  ASSERT_TRUE(Evaluate(tc, GraphDb(chain), EvalOptions(), &semi_stats).ok());
  ASSERT_TRUE(Evaluate(tc, GraphDb(chain), naive, &naive_stats).ok());
  EXPECT_EQ(semi_stats.derived_tuples, naive_stats.derived_tuples);
  EXPECT_GT(naive_stats.rounds, 2u);
}

TEST(DatalogEvalTest, StratifiedNegation) {
  Program p = *ParseProgram(R"(
    reach(Y) :- start(X), edge(X, Y).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(X) :- node(X), !reach(X), !start(X).
  )");
  Database db = *MakeDatabase(
      {{"node", 1}, {"start", 1}, {"edge", 2}},
      {{"node", {{"a"}, {"b"}, {"c"}, {"d"}}},
       {"start", {{"a"}}},
       {"edge", {{"a", "b"}, {"b", "c"}}}});
  Database out = *Evaluate(p, db);
  EXPECT_EQ(*out.RelationFor("reach"), MakeRelation(1, {{"b"}, {"c"}}));
  EXPECT_EQ(*out.RelationFor("unreachable"), MakeRelation(1, {{"d"}}));
}

TEST(DatalogEvalTest, ConstraintsFilterBindings) {
  Program p = *ParseProgram("loopless(X, Y) :- edge(X, Y), X != Y.");
  Database db = *MakeDatabase({{"edge", 2}},
                              {{"edge", {{"a", "a"}, {"a", "b"}}}});
  Database out = *Evaluate(p, db);
  EXPECT_EQ(*out.RelationFor("loopless"), MakeRelation(2, {{"a", "b"}}));
}

TEST(DatalogEvalTest, ConstantsInRules) {
  Program p = *ParseProgram("from_a(Y) :- edge(a, Y). marked(z).");
  Database db = *MakeDatabase({{"edge", 2}},
                              {{"edge", {{"a", "b"}, {"b", "c"}}}});
  Database out = *Evaluate(p, db);
  EXPECT_EQ(*out.RelationFor("from_a"), MakeRelation(1, {{"b"}}));
  EXPECT_EQ(*out.RelationFor("marked"), MakeRelation(1, {{"z"}}));
}

TEST(DatalogEvalTest, HeadPredicateSeededFromEdb) {
  // IDB predicate with stored facts: they persist and feed derivation.
  Program p = *ParseProgram("path(X, Z) :- path(X, Y), path(Y, Z).");
  Database db = *MakeDatabase({{"path", 2}},
                              {{"path", {{"a", "b"}, {"b", "c"}}}});
  Database out = *Evaluate(p, db);
  EXPECT_EQ(*out.RelationFor("path"),
            MakeRelation(2, {{"a", "b"}, {"b", "c"}, {"a", "c"}}));
}

TEST(DatalogEvalTest, UnsafeProgramRejected) {
  Program p = *ParseProgram("p(X).");
  Database db = *MakeDatabase({{"q", 1}}, {});
  EXPECT_FALSE(Evaluate(p, db).ok());
}

TEST(FromFirstOrderTest, AcceptsThePaperTransitiveClosureSentence) {
  // Example 1's sentence: body disjunction distributes into two Horn clauses.
  Formula phi = *ParseFormula(
      "forall x1, x2, x3: (R2(x1, x2) & R1(x2, x3)) | R1(x1, x3) -> R2(x1, x3)");
  auto program = FromFirstOrder(phi);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->has_value());
  EXPECT_EQ((*program)->rules.size(), 2u);
}

TEST(FromFirstOrderTest, AcceptsFactsAndConstraints) {
  Formula phi = *ParseFormula(
      "R(a, b) & (forall x, y: Q(x, y) & !(x = y) -> S(x, y))");
  auto program = FromFirstOrder(phi);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->has_value());
  EXPECT_EQ((*program)->rules.size(), 2u);
  EXPECT_EQ((*program)->rules[1].constraints.size(), 1u);
}

TEST(FromFirstOrderTest, RejectsNonHornShapes) {
  // Negated body atom.
  EXPECT_FALSE(FromFirstOrder(*ParseFormula("forall x: !R(x) -> S(x)"))->has_value());
  // Biconditional.
  EXPECT_FALSE(FromFirstOrder(*ParseFormula("forall x: R(x) <-> S(x)"))->has_value());
  // Disjunctive head.
  EXPECT_FALSE(
      FromFirstOrder(*ParseFormula("forall x: R(x) -> S(x) | T(x)"))->has_value());
  // Existential body.
  EXPECT_FALSE(FromFirstOrder(*ParseFormula("forall x: (exists y: Q(x, y)) -> S(x)"))
                   ->has_value());
}

}  // namespace
}  // namespace kbt::datalog
