#include "logic/parser.h"

#include <gtest/gtest.h>

#include "logic/analysis.h"
#include "logic/printer.h"

namespace kbt {
namespace {

TEST(ParserTest, AtomsAndTerms) {
  Formula f = *ParseFormula("R(a, b)");
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_EQ(f->terms().size(), 2u);
  EXPECT_TRUE(f->terms()[0].is_constant());  // Unbound identifiers are constants.
  EXPECT_EQ(ToString(f), "R(a, b)");
}

TEST(ParserTest, BoundIdentifiersAreVariables) {
  Formula f = *ParseFormula("forall x: R(x, a)");
  const Formula& atom = f->children()[0];
  EXPECT_TRUE(atom->terms()[0].is_variable());
  EXPECT_TRUE(atom->terms()[1].is_constant());
}

TEST(ParserTest, PrecedenceImpliesBindsLooserThanOr) {
  Formula f = *ParseFormula("R(a) | S(b) -> T(c)");
  EXPECT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->children()[0]->kind(), FormulaKind::kOr);
}

TEST(ParserTest, ImpliesIsRightAssociative) {
  Formula f = *ParseFormula("R(a) -> S(b) -> T(c)");
  EXPECT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->children()[1]->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, QuantifierBodyExtendsRight) {
  Formula f = *ParseFormula("forall x: R(x) -> S(x)");
  EXPECT_EQ(f->kind(), FormulaKind::kForall);
  EXPECT_EQ(f->children()[0]->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, MultipleQuantifiedVariables) {
  Formula f = *ParseFormula("exists x, y: Q(x, y)");
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->children()[0]->kind(), FormulaKind::kExists);
}

TEST(ParserTest, EqualityAndInequality) {
  Formula f = *ParseFormula("forall x, y: x = y | x != y");
  Formula body = f->children()[0]->children()[0];
  EXPECT_EQ(body->kind(), FormulaKind::kOr);
  EXPECT_EQ(body->children()[0]->kind(), FormulaKind::kEquals);
  EXPECT_EQ(body->children()[1]->kind(), FormulaKind::kNot);
}

TEST(ParserTest, ZeroAryAtomNeedsParens) {
  Formula f = *ParseFormula("R4()");
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_TRUE(f->terms().empty());
}

TEST(ParserTest, TrueFalseLiterals) {
  EXPECT_EQ((*ParseFormula("true"))->kind(), FormulaKind::kTrue);
  EXPECT_EQ((*ParseFormula("false"))->kind(), FormulaKind::kFalse);
}

TEST(ParserTest, DotAfterQuantifierAlsoAccepted) {
  EXPECT_TRUE(ParseFormula("forall x . R(x)").ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto r1 = ParseFormula("R(a");
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);
  auto r2 = ParseFormula("R(a) &");
  EXPECT_FALSE(r2.ok());
  auto r3 = ParseFormula("R(a) R(b)");
  EXPECT_FALSE(r3.ok());
  auto r4 = ParseFormula("forall : R(a)");
  EXPECT_FALSE(r4.ok());
  auto r5 = ParseFormula("@");
  EXPECT_FALSE(r5.ok());
  auto r6 = ParseFormula("a < b");
  EXPECT_FALSE(r6.ok());
}

TEST(ParserTest, ParseSentenceRejectsFreeVariables) {
  // 'x' is never quantified here, so it parses as a constant — but in a context
  // that expects a variable style name, it is simply a constant and the formula
  // is still a sentence. A genuinely free variable needs a quantifier elsewhere:
  Formula f = *ParseFormula("exists x: Q(x, y)");
  EXPECT_TRUE(IsSentence(f));  // y is a constant by the binding rule.
  // Free variables can only be introduced programmatically:
  Formula open = Atom("R", {Term::Var("z")});
  EXPECT_FALSE(IsSentence(open));
  EXPECT_TRUE(ParseSentence("forall x: R(x) -> R(x)").ok());
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char* inputs[] = {
      "forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z)",
      "exists x: P(x) & !(x = a)",
      "forall x: P(x) <-> Q(x, x)",
      "R4() -> false",
      "forall x: (exists y: Q(x, y)) -> P(x)",
  };
  for (const char* text : inputs) {
    Formula f1 = *ParseFormula(text);
    Formula f2 = *ParseFormula(ToString(f1));
    EXPECT_TRUE(StructurallyEqual(f1, f2)) << text << " vs " << ToString(f1);
  }
}

}  // namespace
}  // namespace kbt
