/// \file
/// Cross-module invariants on randomized inputs:
///
///  * the grounder and the model checker implement the same satisfaction relation
///    (a circuit evaluated under a database's facts equals db ⊨ φ over the same
///    domain);
///  * ⊓ / ⊔ obey their lattice laws;
///  * MakeUpdateContext computes B and s exactly as eq. (9) prescribes;
///  * resource guards trip deterministically.

#include <gtest/gtest.h>

#include <random>

#include "core/kbt.h"
#include "logic/grounder.h"
#include "testutil.h"

namespace kbt {
namespace {

class GrounderModelCheckAgreement : public ::testing::TestWithParam<int> {};

TEST_P(GrounderModelCheckAgreement, CircuitUnderFactsEqualsSatisfaction) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 48271 + 23);
  testutil::RandomSentenceGenerator gen(&rng, 0.2);
  for (int trial = 0; trial < 15; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula f = gen.Generate(4);
    // Extend db so σ(db) dominates σ(φ) (new relations empty under CWA).
    Schema formula_schema = *SchemaOf(f);
    Schema extended = *db.schema().Union(formula_schema);
    Database full = *db.ExtendTo(extended);
    std::vector<Value> domain = ActiveDomain(full, f);

    Grounding g = *GroundSentence(f, domain);
    bool via_circuit = g.circuit.Evaluate(g.root, [&](int atom_id) {
      const GroundAtom& atom = g.atoms.AtomOf(atom_id);
      return full.RelationFor(atom.relation)->Contains(atom.tuple);
    });
    bool via_checker = *Satisfies(full, f, domain);
    EXPECT_EQ(via_circuit, via_checker) << ToString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrounderModelCheckAgreement,
                         ::testing::Range(0, 12));

class LatticeLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(LatticeLawsTest, GlbLubBounds) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 16807 + 29);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  Database glb = kb.Glb().databases()[0];
  Database lub = kb.Lub().databases()[0];
  for (const Database& member : kb) {
    for (size_t i = 0; i < member.size(); ++i) {
      // ⊓ is a lower bound and ⊔ an upper bound, componentwise.
      EXPECT_TRUE(glb.relation_at(i).IsSubsetOf(member.relation_at(i)));
      EXPECT_TRUE(member.relation_at(i).IsSubsetOf(lub.relation_at(i)));
    }
  }
  // Idempotence on singletons.
  EXPECT_EQ(kb.Glb().Glb(), kb.Glb());
  EXPECT_EQ(kb.Lub().Lub(), kb.Lub());
  // ⊓ of the ⊔-singleton is itself (and vice versa).
  EXPECT_EQ(kb.Lub().Glb(), kb.Lub());
}

TEST_P(LatticeLawsTest, GlbIsGreatestLowerBound) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 69621 + 31);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  Database glb = kb.Glb().databases()[0];
  // Any other componentwise lower bound is ⊆ the glb: test with the glb minus a
  // tuple wherever possible.
  for (size_t i = 0; i < glb.size(); ++i) {
    if (glb.relation_at(i).empty()) continue;
    Tuple t = glb.relation_at(i).front().ToTuple();
    Relation smaller = glb.relation_at(i).WithoutTuple(t);
    EXPECT_TRUE(smaller.IsSubsetOf(glb.relation_at(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLawsTest, ::testing::Range(0, 8));

TEST(UpdateContextTest, ComputesBAndSPerEquation9) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  Formula f = *ParseFormula("S(c) | R(b)");
  UpdateContext ctx = *MakeUpdateContext(f, db);
  // s = σ(db) then σ(φ)'s new relations.
  ASSERT_EQ(ctx.schema.size(), 2u);
  EXPECT_EQ(ctx.schema.decl(0).symbol, Name("R"));
  EXPECT_EQ(ctx.schema.decl(1).symbol, Name("S"));
  // B = values(db) ∪ constants(φ).
  std::vector<Value> expected = {Name("a"), Name("b"), Name("c")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ctx.domain, expected);
  // The extended base embeds db with the new relation empty.
  EXPECT_TRUE(ctx.extended_base.RelationFor("S")->empty());
  EXPECT_EQ(*ctx.extended_base.RelationFor("R"), *db.RelationFor("R"));
}

TEST(UpdateContextTest, ErrorCases) {
  Database db = *MakeDatabase({{"R", 1}}, {});
  // Arity conflict between σ(db) and σ(φ).
  EXPECT_FALSE(MakeUpdateContext(*ParseFormula("R(a, b)"), db).ok());
  // Free variables.
  EXPECT_FALSE(MakeUpdateContext(Atom("R", {Term::Var("x")}), db).ok());
}

TEST(ResourceGuardTest, MaxModelsTrips) {
  // 2^10 minimal models (all partitions) against a budget of 100.
  std::vector<Tuple> elems;
  for (int i = 0; i < 10; ++i) elems.push_back(Tuple{Name("e" + std::to_string(i))});
  Database db = *Database::Create(*Schema::Of({{"R", 1}}),
                                  {Relation(1, std::move(elems))});
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  options.max_models = 100;
  auto result = Mu(*ParseFormula("forall x: R(x) -> R2(x) | R3(x)"), db, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, GroundingBudgetTrips) {
  Database db = *Database::Create(*Schema::Of({{"R", 2}}),
                                  {MakeRelation(2, {{"a", "b"}, {"b", "c"},
                                                    {"c", "d"}, {"d", "e"}})});
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  options.max_ground_nodes = 50;
  auto result = Mu(*ParseFormula("forall x, y, z: R(x, y) & R(y, z) -> R(x, z)"),
                   db, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(TauTest, MembersWithDifferentActiveDomains) {
  // μ computes B per member; results still union into one kb.
  Database small = *MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}});
  Database large = *MakeDatabase({{"P", 1}}, {{"P", {{"a"}, {"b"}, {"c"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({small, large});
  Knowledgebase out = *Tau(*ParseFormula("exists x: !P(x) & Q(x)"), kb);
  // small: B={a}: no way to satisfy with P untouched... except dropping P(a)
  // is farther than adding Q on a fresh... no fresh values exist in B, so the
  // minimal change drops P(a) and sets Q(a). large: B={a,b,c}: keep P, add Q(b)
  // or Q(c) — plus the symmetric variants for which element is chosen.
  EXPECT_FALSE(out.empty());
  for (const Database& db : out) {
    EXPECT_TRUE(*Satisfies(db, *ParseFormula("exists x: !P(x) & Q(x)")));
  }
}

}  // namespace
}  // namespace kbt
