/// \file
/// The comparison baselines of §1 and §2.1: the FUV83 flock update (rejected by the
/// paper for violating the irrelevance of syntax) and an AGM-style revision
/// operator (the wrong notion of change for an evolving world — Example 1.1).

#include <gtest/gtest.h>

#include "baseline/fuv_update.h"
#include "baseline/revision.h"
#include "core/kbt.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;

Formula A() { return Atom("A", {}); }
Formula B() { return Atom("B", {}); }

TEST(FuvUpdateTest, ConsistentInsertKeepsWholeTheory) {
  baseline::FuvResult r = *baseline::FuvUpdate({A()}, B());
  ASSERT_EQ(r.flock.size(), 1u);
  EXPECT_EQ(r.flock[0].size(), 2u);
}

TEST(FuvUpdateTest, MaximalConsistentSubsetsEnumerated) {
  // Theory {A, B, A∧B→C}; insert ¬C. The three maximal consistent subsets are
  // the paper's §1 example: {A, A∧B→C}, {B, A∧B→C}, {A, B}.
  Formula c = Atom("C", {});
  Formula rule = Implies(And(A(), B()), c);
  baseline::FuvResult r = *baseline::FuvUpdate({A(), B(), rule}, Not(c));
  EXPECT_EQ(r.flock.size(), 3u);
  for (const auto& theory : r.flock) {
    EXPECT_EQ(theory.size(), 3u);  // Two survivors + the insertion.
    EXPECT_TRUE(*baseline::GroundConsistent(theory));
  }
}

TEST(FuvUpdateTest, InconsistentInsertionGivesEmptyFlock) {
  baseline::FuvResult r = *baseline::FuvUpdate({A()}, And(B(), Not(B())));
  EXPECT_TRUE(r.flock.empty());
}

TEST(FuvUpdateTest, ViolatesIrrelevanceOfSyntax) {
  // {A, B} and {A ∧ B} are logically equivalent theories. Inserting ¬B keeps A
  // from the first but nothing from the second — the syntax of the stored
  // sentences leaks into the result, which is exactly why §2.1 rejects this
  // operator (KM postulate (iv) / Theorem 2.1(iv)).
  baseline::FuvResult split = *baseline::FuvUpdate({A(), B()}, Not(B()));
  baseline::FuvResult merged = *baseline::FuvUpdate({And(A(), B())}, Not(B()));
  ASSERT_EQ(split.flock.size(), 1u);
  ASSERT_EQ(merged.flock.size(), 1u);
  // Split theory retains A...
  EXPECT_EQ(split.flock[0].size(), 2u);
  EXPECT_TRUE(*baseline::GroundConsistent(
      {And(split.flock[0]), A()}));
  bool split_entails_a = !*baseline::GroundConsistent(
      {And(split.flock[0]), Not(A())});
  // ...but the merged theory forgets it.
  bool merged_entails_a = !*baseline::GroundConsistent(
      {And(merged.flock[0]), Not(A())});
  EXPECT_TRUE(split_entails_a);
  EXPECT_FALSE(merged_entails_a);
}

TEST(FuvUpdateTest, ContrastTauSatisfiesIrrelevanceOfSyntax) {
  // The same pair of equivalent inputs through τ: identical results. (The model
  // counterpart of the theories {A,B} / {A∧B} is the world where both hold.)
  Database world = *MakeDatabase({{"A", 0}, {"B", 0}}, {});
  world = *world.WithRelation("A", Relation(0).WithTuple(Tuple()));
  world = *world.WithRelation("B", Relation(0).WithTuple(Tuple()));
  Knowledgebase kb = Knowledgebase::Singleton(world);
  Knowledgebase r1 = *Tau(Not(B()), kb);
  Knowledgebase r2 = *Tau(And(Not(B()), Not(B())), kb);  // Equivalent syntax.
  EXPECT_EQ(KbAsStrings(r1), KbAsStrings(r2));
  ASSERT_EQ(r1.size(), 1u);
  // And τ retains A — minimal change.
  EXPECT_FALSE(r1.databases()[0].RelationFor("A")->empty());
  EXPECT_TRUE(r1.databases()[0].RelationFor("B")->empty());
}

TEST(FuvUpdateTest, NonGroundInputRejected) {
  Formula open = Forall("x", Atom("P", {Term::Var("x")}));
  EXPECT_EQ(baseline::FuvUpdate({open}, A()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FuvUpdateTest, TheorySizeGuard) {
  std::vector<Formula> big(21, A());
  EXPECT_EQ(baseline::FuvUpdate(big, B()).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RevisionTest, Example11RevisionVsUpdate) {
  // kb = {{v}, {w}} (one robot landed, unknown which); learn "V has landed".
  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({has_v, has_w});
  Formula v_landed = *ParseFormula("R1(v)");

  // Revision (static world): keep the worlds already satisfying φ — concludes
  // ¬w, which Example 1.1 argues is wrong for a *changed* world.
  Knowledgebase revised = *baseline::Revise(v_landed, kb);
  EXPECT_EQ(KbAsStrings(revised), KbAsStrings(Knowledgebase::Singleton(has_v)));

  // Update (changing world): per-world minimal change leaves W open.
  Knowledgebase updated = *Tau(v_landed, kb);
  EXPECT_EQ(updated.size(), 2u);
  EXPECT_NE(KbAsStrings(revised), KbAsStrings(updated));
}

TEST(RevisionTest, FallsBackToUpdateWhenInconsistent) {
  Database empty = *MakeDatabase({{"R1", 1}}, {});
  Knowledgebase kb = Knowledgebase::Singleton(empty);
  Formula v_landed = *ParseFormula("R1(v)");
  Knowledgebase revised = *baseline::Revise(v_landed, kb);
  EXPECT_EQ(KbAsStrings(revised), KbAsStrings(*Tau(v_landed, kb)));
}

TEST(RevisionTest, NewRelationsForceUpdatePath) {
  Database db = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Knowledgebase kb = Knowledgebase::Singleton(db);
  // φ mentions a relation outside σ(kb): no member can satisfy it as-is.
  Knowledgebase out = *baseline::Revise(*ParseFormula("S(v)"), kb);
  EXPECT_EQ(out.schema().size(), 2u);
}

}  // namespace
}  // namespace kbt
