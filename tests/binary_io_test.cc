/// \file
/// Binary serialization tests: round-trip property tests over random schemas
/// and relations (including empty relations, zero-ary relations and empty
/// world-sets), byte-stability (serialize ∘ parse ∘ serialize is the
/// identity on bytes), and malformed-input fuzzing asserting clean Status
/// errors — never crashes, never unbounded allocations.

#include "rel/binary_io.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "rel/io.h"
#include "testutil.h"

namespace kbt {
namespace {

/// Random schema of 0..4 relations with arities 0..3 and distinct names.
Schema RandomSchema(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> count(0, 4);
  std::uniform_int_distribution<int> arity(0, 3);
  std::vector<RelationDecl> decls;
  int n = count(*rng);
  for (int i = 0; i < n; ++i) {
    decls.push_back(RelationDecl{Name("Bin" + std::to_string(i)),
                                 static_cast<size_t>(arity(*rng))});
  }
  return *Schema::FromDecls(std::move(decls));
}

/// Random database over `schema`: each relation empty with probability ~1/3,
/// otherwise a handful of rows over a small constant pool.
Database RandomDatabaseOver(const Schema& schema, std::mt19937_64* rng) {
  std::uniform_int_distribution<int> rows(0, 5);
  std::uniform_int_distribution<int> constant(0, 5);
  std::vector<Relation> relations;
  for (const RelationDecl& d : schema.decls()) {
    std::vector<Tuple> tuples;
    int n = d.arity == 0 ? rows(*rng) % 2 : rows(*rng);
    for (int r = 0; r < n; ++r) {
      std::vector<Value> values;
      for (size_t i = 0; i < d.arity; ++i) {
        values.push_back(Name("c" + std::to_string(constant(*rng))));
      }
      tuples.emplace_back(std::move(values));
    }
    relations.emplace_back(d.arity, std::move(tuples));
  }
  return *Database::Create(schema, std::move(relations));
}

TEST(BinaryIoTest, DatabaseRoundTripProperty) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    Schema schema = RandomSchema(&rng);
    Database db = RandomDatabaseOver(schema, &rng);
    std::string bytes = SerializeDatabase(db);
    StatusOr<Database> parsed = ParseBinaryDatabase(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, db);
    // Byte stability: re-serializing the parse reproduces the bytes exactly.
    EXPECT_EQ(SerializeDatabase(*parsed), bytes);
  }
}

TEST(BinaryIoTest, KnowledgebaseRoundTripProperty) {
  std::mt19937_64 rng(43);
  std::uniform_int_distribution<int> members(0, 4);
  for (int iter = 0; iter < 200; ++iter) {
    Schema schema = RandomSchema(&rng);
    int n = members(rng);
    Knowledgebase kb(schema);
    if (n > 0) {
      std::vector<Database> dbs;
      for (int i = 0; i < n; ++i) dbs.push_back(RandomDatabaseOver(schema, &rng));
      kb = *Knowledgebase::FromDatabases(std::move(dbs));
    }
    std::string bytes = SerializeKnowledgebase(kb);
    StatusOr<Knowledgebase> parsed = ParseBinaryKnowledgebase(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, kb);
    EXPECT_EQ(SerializeKnowledgebase(*parsed), bytes);
  }
}

TEST(BinaryIoTest, EmptyEdgeCases) {
  // Empty schema, empty database.
  Database empty_db;
  StatusOr<Database> db = ParseBinaryDatabase(SerializeDatabase(empty_db));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(*db, empty_db);

  // Empty (inconsistent) knowledgebase over a non-empty schema — distinct from
  // the singleton holding an empty database; both must survive the trip.
  Schema schema = *Schema::Of({{"R", 2}});
  Knowledgebase inconsistent(schema);
  StatusOr<Knowledgebase> kb =
      ParseBinaryKnowledgebase(SerializeKnowledgebase(inconsistent));
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(*kb, inconsistent);
  EXPECT_TRUE(kb->empty());
  EXPECT_EQ(kb->schema(), schema);

  Knowledgebase singleton = Knowledgebase::Singleton(Database(schema));
  kb = ParseBinaryKnowledgebase(SerializeKnowledgebase(singleton));
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(*kb, singleton);
  EXPECT_NE(*kb, inconsistent);
}

TEST(BinaryIoTest, ZeroAryRelations) {
  Schema schema = *Schema::Of({{"Flag", 0}, {"R", 1}});
  Database with_flag(schema);
  with_flag = *with_flag.WithRelation("Flag", Relation(0, {Tuple()}));
  with_flag = *with_flag.WithRelation("R", Relation(1, {Tuple{Name("a")}}));
  StatusOr<Database> parsed = ParseBinaryDatabase(SerializeDatabase(with_flag));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, with_flag);
  EXPECT_EQ(parsed->relation_at(0).size(), 1u);
}

TEST(BinaryIoTest, TruncationAtEveryBoundaryFailsCleanly) {
  std::mt19937_64 rng(44);
  Schema schema = RandomSchema(&rng);
  Knowledgebase kb = *Knowledgebase::FromDatabases(
      {RandomDatabaseOver(schema, &rng), RandomDatabaseOver(schema, &rng)});
  std::string bytes = SerializeKnowledgebase(kb);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    StatusOr<Knowledgebase> parsed =
        ParseBinaryKnowledgebase(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(BinaryIoTest, ByteFlipFuzzNeverCrashes) {
  std::mt19937_64 rng(45);
  Schema schema = RandomSchema(&rng);
  Database db = RandomDatabaseOver(schema, &rng);
  std::string bytes = SerializeDatabase(db);
  std::uniform_int_distribution<size_t> pos(0, bytes.empty() ? 0 : bytes.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string corrupted = bytes;
    if (!corrupted.empty()) {
      corrupted[pos(rng)] = static_cast<char>(byte(rng));
    }
    // Either a clean parse (the flip hit a byte that still decodes) or a clean
    // error — the assertion is simply that we return rather than crash or
    // allocate unboundedly.
    StatusOr<Database> parsed = ParseBinaryDatabase(corrupted);
    if (!parsed.ok()) {
      EXPECT_NE(parsed.status().code(), StatusCode::kOk);
    }
  }
}

TEST(BinaryIoTest, RandomGarbageFailsCleanly) {
  std::mt19937_64 rng(46);
  std::uniform_int_distribution<int> len(0, 64);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string garbage;
    int n = len(rng);
    for (int i = 0; i < n; ++i) garbage.push_back(static_cast<char>(byte(rng)));
    ParseBinaryDatabase(garbage);
    ParseBinaryKnowledgebase(garbage);
  }
}

TEST(BinaryIoTest, HugeCountsRejectedBeforeAllocation) {
  // A dictionary count of 2^31 over a 12-byte input must fail fast, not try to
  // reserve gigabytes.
  std::string bytes;
  bytes.append("\xFF\xFF\xFF\x7F", 4);
  bytes.append(8, '\0');
  StatusOr<Database> parsed = ParseBinaryDatabase(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);

  // Same for a relation row count: schema declares arity 2, rows = 2^31.
  Schema schema = *Schema::Of({{"R", 2}});
  std::string valid = SerializeDatabase(Database(schema));
  // The last 4 bytes are R's row count (0); overwrite with a huge value.
  ASSERT_GE(valid.size(), 4u);
  valid.replace(valid.size() - 4, 4, "\xFF\xFF\xFF\x7F", 4);
  parsed = ParseBinaryDatabase(valid);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, AgreesWithTextFormOnTestUtilDatabases) {
  std::mt19937_64 rng(47);
  for (int iter = 0; iter < 20; ++iter) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    StatusOr<Knowledgebase> via_binary =
        ParseBinaryKnowledgebase(SerializeKnowledgebase(kb));
    StatusOr<Knowledgebase> via_text = ParseKnowledgebase(FormatKnowledgebase(kb));
    ASSERT_TRUE(via_binary.ok()) << via_binary.status();
    ASSERT_TRUE(via_text.ok()) << via_text.status();
    EXPECT_EQ(*via_binary, *via_text);
    EXPECT_EQ(*via_binary, kb);
  }
}

}  // namespace
}  // namespace kbt
