#include "eval/model_check.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "logic/parser.h"

namespace kbt {
namespace {

Database FlightDb() {
  return *MakeDatabase({{"R1", 2}},
                       {{"R1", {{"yyz", "yow"}, {"yow", "yul"}, {"yul", "yqb"}}}});
}

TEST(ModelCheckTest, AtomsFollowStoredFacts) {
  Database db = FlightDb();
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("R1(yyz, yow)")));
  EXPECT_FALSE(*Satisfies(db, *ParseFormula("R1(yow, yyz)")));  // Closed world.
}

TEST(ModelCheckTest, ConnectivesAndEquality) {
  Database db = FlightDb();
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("R1(yyz, yow) & !R1(yow, yyz)")));
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("R1(a, b) | R1(yyz, yow)")));
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("R1(a, b) -> false")));
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("R1(yyz, yow) <-> R1(yow, yul)")));
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("yyz = yyz & !(yyz = yow)")));
}

TEST(ModelCheckTest, QuantifiersOverActiveDomain) {
  Database db = FlightDb();
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("exists x: R1(yyz, x)")));
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("forall x, y: R1(x, y) -> !(x = y)")));
  EXPECT_FALSE(*Satisfies(db, *ParseFormula("forall x: exists y: R1(x, y)")));
}

TEST(ModelCheckTest, ConstantsOfFormulaJoinTheDomain) {
  Database db = *MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}});
  // "zz" appears only in the formula; it still participates in quantification.
  EXPECT_TRUE(*Satisfies(db, *ParseFormula("exists x: !P(x) & x = zz")));
}

TEST(ModelCheckTest, ExplicitDomainOverridesActive) {
  Database db = *MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}});
  Formula some_missing = *ParseFormula("exists x: !P(x)");
  // Over the bare active domain {a} there is no non-P element...
  EXPECT_FALSE(*Satisfies(db, some_missing));
  // ...but over a caller-supplied larger domain there is.
  EXPECT_TRUE(*Satisfies(db, some_missing, {Name("a"), Name("b")}));
}

TEST(ModelCheckTest, UndeclaredRelationIsAnError) {
  Database db = FlightDb();
  auto result = Satisfies(db, *ParseFormula("Zed(yyz)"));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelCheckTest, NonSentenceRejected) {
  Database db = FlightDb();
  auto result = Satisfies(db, Atom("R1", {Term::Var("x"), Term::Var("y")}));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelCheckTest, KbSatisfiesIsUniversal) {
  Database with = *MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}});
  Database without = *MakeDatabase({{"P", 1}}, {});
  Knowledgebase kb = *Knowledgebase::FromDatabases({with, without});
  EXPECT_FALSE(*KbSatisfies(kb, *ParseFormula("P(a)")));
  EXPECT_TRUE(*KbSatisfies(Knowledgebase::Singleton(with), *ParseFormula("P(a)")));
  EXPECT_TRUE(*KbSatisfies(Knowledgebase(), *ParseFormula("P(a)")));  // Vacuous.
}

TEST(ModelCheckTest, EvaluateQueryComputesAnswerSet) {
  Database db = FlightDb();
  Formula reach2 = *ParseFormula("exists z: R1(x, z) & R1(z, y)");
  // x, y free by construction.
  Formula body = Exists("z", And(Atom("R1", {Term::Var("x"), Term::Var("z")}),
                                 Atom("R1", {Term::Var("z"), Term::Var("y")})));
  Relation ans = *EvaluateQuery(db, body, {Name("x"), Name("y")},
                                ActiveDomain(db, body));
  EXPECT_EQ(ans, MakeRelation(2, {{"yyz", "yul"}, {"yow", "yqb"}}));
  (void)reach2;
}

TEST(ModelCheckTest, EvaluateQueryZeroVariables) {
  Database db = FlightDb();
  Formula yes = *ParseFormula("R1(yyz, yow)");
  Relation r = *EvaluateQuery(db, yes, {}, db.ActiveDomain());
  EXPECT_EQ(r.size(), 1u);  // {()}.
  Formula no = *ParseFormula("R1(yow, yyz)");
  EXPECT_TRUE(EvaluateQuery(db, no, {}, db.ActiveDomain())->empty());
}

TEST(ModelCheckTest, EvaluateQueryRejectsUncoveredFreeVariables) {
  Database db = FlightDb();
  Formula body = Atom("R1", {Term::Var("x"), Term::Var("y")});
  auto result = EvaluateQuery(db, body, {Name("x")}, db.ActiveDomain());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kbt
