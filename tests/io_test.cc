#include "rel/io.h"

#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(IoTest, FormatDatabase) {
  Database db = *MakeDatabase({{"R1", 2}, {"R2", 1}},
                              {{"R1", {{"a", "b"}}}, {"R2", {}}});
  EXPECT_EQ(FormatDatabase(db), "R1/2: {(a, b)}; R2/1: {}");
}

TEST(IoTest, ParseDatabase) {
  Database db = *ParseDatabase("R1/2: {(a, b), (c, d)}; R2/1: {}; R3/0: {()}");
  EXPECT_EQ(db.schema().size(), 3u);
  EXPECT_EQ(db.RelationFor("R1")->size(), 2u);
  EXPECT_TRUE(db.RelationFor("R2")->empty());
  EXPECT_TRUE(db.RelationFor("R3")->Contains(Tuple()));
}

TEST(IoTest, DatabaseRoundTrip) {
  std::mt19937_64 rng(808);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    StatusOr<Database> back = ParseDatabase(FormatDatabase(db));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, db);
  }
}

TEST(IoTest, KnowledgebaseRoundTrip) {
  std::mt19937_64 rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    StatusOr<Knowledgebase> back = ParseKnowledgebase(FormatKnowledgebase(kb));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, kb);
  }
}

TEST(IoTest, EmptyKnowledgebase) {
  Knowledgebase none;
  StatusOr<Knowledgebase> back = ParseKnowledgebase(FormatKnowledgebase(none));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(IoTest, ParseErrors) {
  EXPECT_FALSE(ParseDatabase("R1: {(a)}").ok());          // Missing arity.
  EXPECT_FALSE(ParseDatabase("R1/2: {(a)}").ok());        // Tuple arity mismatch.
  EXPECT_FALSE(ParseDatabase("R1/1: {(a)").ok());          // Unterminated set.
  EXPECT_FALSE(ParseDatabase("R1/1: {(a)} junk").ok());    // Trailing input.
  EXPECT_FALSE(ParseDatabase("R1/1: {(a)}; R1/1: {}").ok());  // Duplicate symbol.
  EXPECT_FALSE(ParseKnowledgebase("R1/1: {}").ok());       // Missing brackets.
  EXPECT_FALSE(
      ParseKnowledgebase("[ R1/1: {} | R2/1: {} ]").ok());  // Schema mismatch.
}

TEST(IoTest, WhitespaceInsensitive) {
  Database a = *ParseDatabase("R/2:{(a,b)};S/1:{(c)}");
  Database b = *ParseDatabase("  R/2 : { ( a , b ) } ;  S/1 : { ( c ) }  ");
  EXPECT_EQ(a, b);
}

TEST(IoTest, TruncatedValidInputFailsCleanly) {
  std::mt19937_64 rng(111);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  std::string text = FormatKnowledgebase(kb);
  for (size_t cut = 0; cut + 1 < text.size(); ++cut) {
    StatusOr<Knowledgebase> parsed =
        ParseKnowledgebase(std::string_view(text).substr(0, cut));
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError)
          << "cut at " << cut;
    }
  }
}

TEST(IoTest, RandomGarbageFuzzNeverCrashes) {
  // Pure random bytes, printable noise, and mutated valid prefixes: every
  // outcome must be a clean Status, never a crash, hang, or assert.
  std::mt19937_64 rng(222);
  std::uniform_int_distribution<int> len(0, 80);
  std::uniform_int_distribution<int> any_byte(0, 255);
  std::uniform_int_distribution<int> noise_byte(32, 126);
  const std::string valid = "R1/2: {(a, b), (c, d)}; R2/1: {(e)}";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string input;
    switch (iter % 3) {
      case 0: {
        int n = len(rng);
        for (int i = 0; i < n; ++i) input.push_back(static_cast<char>(any_byte(rng)));
        break;
      }
      case 1: {
        int n = len(rng);
        for (int i = 0; i < n; ++i) input.push_back(static_cast<char>(noise_byte(rng)));
        break;
      }
      default: {
        input = valid;
        std::uniform_int_distribution<size_t> pos(0, input.size() - 1);
        input[pos(rng)] = static_cast<char>(any_byte(rng));
        break;
      }
    }
    StatusOr<Database> db = ParseDatabase(input);
    if (!db.ok()) {
      EXPECT_FALSE(db.status().message().empty());
    }
    StatusOr<Knowledgebase> kb = ParseKnowledgebase(input);
    if (!kb.ok()) {
      EXPECT_FALSE(kb.status().message().empty());
    }
    StatusOr<Knowledgebase> bracketed = ParseKnowledgebase("[ " + input + " ]");
    (void)bracketed;
  }
}

}  // namespace
}  // namespace kbt
