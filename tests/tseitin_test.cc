#include "sat/tseitin.h"

#include <gtest/gtest.h>

#include <random>

#include "logic/circuit.h"
#include "sat/solver.h"

namespace kbt::sat {
namespace {

/// Checks that the CNF restricted to the atom variables has exactly the circuit's
/// satisfying assignments: for every assignment of the external variables, the CNF
/// is satisfiable under matching assumptions iff the circuit evaluates true.
void CheckEquivalence(const Circuit& circuit, int root) {
  Solver solver;
  TseitinEncoder encoder(&circuit, &solver);
  encoder.Assert(root);
  std::vector<int> vars = circuit.CollectVars(root);
  ASSERT_LE(vars.size(), 12u);
  for (uint32_t mask = 0; mask < (uint32_t{1} << vars.size()); ++mask) {
    auto value = [&](int v) {
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == v) return ((mask >> i) & 1) != 0;
      }
      ADD_FAILURE() << "unknown var " << v;
      return false;
    };
    bool expected = circuit.Evaluate(root, value);
    std::vector<Lit> assumptions;
    for (size_t i = 0; i < vars.size(); ++i) {
      assumptions.push_back(MkLit(encoder.VarForAtom(vars[i]), !value(vars[i])));
    }
    SolveResult got = solver.Solve(assumptions);
    EXPECT_EQ(got == SolveResult::kSat, expected) << "mask=" << mask;
  }
}

TEST(TseitinTest, SingleGates) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1), v2 = c.VarNode(2);
  CheckEquivalence(c, c.AndNode({v0, v1, v2}));
  CheckEquivalence(c, c.OrNode({v0, v1, v2}));
  CheckEquivalence(c, c.NotNode(v0));
  CheckEquivalence(c, v0);
}

TEST(TseitinTest, ConstantsEncodable) {
  Circuit c;
  Solver solver;
  TseitinEncoder encoder(&c, &solver);
  encoder.Assert(c.TrueNode());
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  Solver solver2;
  TseitinEncoder encoder2(&c, &solver2);
  encoder2.Assert(c.FalseNode());
  EXPECT_EQ(solver2.Solve(), SolveResult::kUnsat);
}

TEST(TseitinTest, NestedMixedGates) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1), v2 = c.VarNode(2), v3 = c.VarNode(3);
  int f = c.OrNode({c.AndNode({v0, c.NotNode(v1)}),
                    c.AndNode({c.IffNode(v2, v3), c.ImpliesNode(v0, v3)})});
  CheckEquivalence(c, f);
}

TEST(TseitinTest, SharedSubcircuitEncodedOnce) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1);
  int shared = c.AndNode({v0, v1});
  int f = c.OrNode({shared, c.NotNode(shared)});
  // f is a tautology over the shared node.
  CheckEquivalence(c, f);
}

TEST(TseitinTest, RandomCircuitsAgreeWithEvaluation) {
  std::mt19937_64 rng(20260610);
  for (int trial = 0; trial < 30; ++trial) {
    Circuit c;
    std::vector<int> pool;
    for (int v = 0; v < 5; ++v) pool.push_back(c.VarNode(v));
    std::uniform_int_distribution<int> op(0, 3);
    std::uniform_int_distribution<size_t> pick(0, 100);
    for (int step = 0; step < 12; ++step) {
      int a = pool[pick(rng) % pool.size()];
      int b = pool[pick(rng) % pool.size()];
      switch (op(rng)) {
        case 0:
          pool.push_back(c.AndNode({a, b}));
          break;
        case 1:
          pool.push_back(c.OrNode({a, b}));
          break;
        case 2:
          pool.push_back(c.NotNode(a));
          break;
        default:
          pool.push_back(c.IffNode(a, b));
          break;
      }
    }
    CheckEquivalence(c, pool.back());
  }
}

}  // namespace
}  // namespace kbt::sat
