#include "sat/tseitin.h"

#include <gtest/gtest.h>

#include <random>

#include "logic/circuit.h"
#include "sat/solver.h"

namespace kbt::sat {
namespace {

/// Checks that the CNF restricted to the atom variables has exactly the circuit's
/// satisfying assignments: for every assignment of the external variables, the CNF
/// is satisfiable under matching assumptions iff the circuit evaluates true.
void CheckEquivalence(const Circuit& circuit, int root) {
  Solver solver;
  TseitinEncoder encoder(&circuit, &solver);
  encoder.Assert(root);
  std::vector<int> vars = circuit.CollectVars(root);
  ASSERT_LE(vars.size(), 12u);
  for (uint32_t mask = 0; mask < (uint32_t{1} << vars.size()); ++mask) {
    auto value = [&](int v) {
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == v) return ((mask >> i) & 1) != 0;
      }
      ADD_FAILURE() << "unknown var " << v;
      return false;
    };
    bool expected = circuit.Evaluate(root, value);
    std::vector<Lit> assumptions;
    for (size_t i = 0; i < vars.size(); ++i) {
      assumptions.push_back(MkLit(encoder.VarForAtom(vars[i]), !value(vars[i])));
    }
    SolveResult got = solver.Solve(assumptions);
    EXPECT_EQ(got == SolveResult::kSat, expected) << "mask=" << mask;
  }
}

TEST(TseitinTest, SingleGates) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1), v2 = c.VarNode(2);
  CheckEquivalence(c, c.AndNode({v0, v1, v2}));
  CheckEquivalence(c, c.OrNode({v0, v1, v2}));
  CheckEquivalence(c, c.NotNode(v0));
  CheckEquivalence(c, v0);
}

TEST(TseitinTest, ConstantsEncodable) {
  Circuit c;
  Solver solver;
  TseitinEncoder encoder(&c, &solver);
  encoder.Assert(c.TrueNode());
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  Solver solver2;
  TseitinEncoder encoder2(&c, &solver2);
  encoder2.Assert(c.FalseNode());
  EXPECT_EQ(solver2.Solve(), SolveResult::kUnsat);
}

TEST(TseitinTest, NestedMixedGates) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1), v2 = c.VarNode(2), v3 = c.VarNode(3);
  int f = c.OrNode({c.AndNode({v0, c.NotNode(v1)}),
                    c.AndNode({c.IffNode(v2, v3), c.ImpliesNode(v0, v3)})});
  CheckEquivalence(c, f);
}

TEST(TseitinTest, SharedSubcircuitEncodedOnce) {
  Circuit c;
  int v0 = c.VarNode(0), v1 = c.VarNode(1);
  int shared = c.AndNode({v0, v1});
  int f = c.OrNode({shared, c.NotNode(shared)});
  // f is a tautology over the shared node.
  CheckEquivalence(c, f);
}

TEST(TseitinTest, IncrementalEncodingOnlyEmitsNewNodes) {
  Circuit c;
  Solver solver;
  TseitinEncoder encoder(&c, &solver);
  int v0 = c.VarNode(0), v1 = c.VarNode(1);
  int band = c.AndNode({v0, v1});
  Lit and_lit = encoder.LitFor(band);
  size_t clauses_after_and = solver.num_clauses();
  size_t nodes_after_and = encoder.encoded_nodes();
  EXPECT_EQ(nodes_after_and, 3u);  // v0, v1, and.

  // Re-encoding the same node is free.
  EXPECT_EQ(encoder.LitFor(band), and_lit);
  EXPECT_EQ(solver.num_clauses(), clauses_after_and);
  EXPECT_EQ(encoder.encoded_nodes(), nodes_after_and);

  // Grow the circuit; encoding the new root reuses the shared subcircuit and
  // only emits clauses for the two new nodes (v2 adds none, the or-gate adds
  // one short clause per child plus the long clause).
  int v2 = c.VarNode(2);
  int bor = c.OrNode({band, v2});
  encoder.LitFor(bor);
  EXPECT_EQ(encoder.encoded_nodes(), nodes_after_and + 2);
  EXPECT_EQ(solver.num_clauses(), clauses_after_and + 3);
}

TEST(TseitinTest, IncrementalEncodingStaysEquivalentAfterGrowth) {
  // One encoder, one solver, a circuit grown in three waves: after each wave
  // the asserted conjunction must have exactly the models of the circuit.
  Circuit c;
  Solver solver;
  TseitinEncoder encoder(&c, &solver);
  int v0 = c.VarNode(0), v1 = c.VarNode(1);
  int wave1 = c.OrNode({v0, v1});
  encoder.Assert(wave1);
  int v2 = c.VarNode(2);
  int wave2 = c.OrNode({c.NotNode(v0), v2});
  encoder.Assert(wave2);
  int wave3 = c.IffNode(v1, v2);
  encoder.Assert(wave3);
  int conjunction = c.AndNode({wave1, wave2, wave3});
  std::vector<int> vars = c.CollectVars(conjunction);
  ASSERT_EQ(vars.size(), 3u);
  for (uint32_t mask = 0; mask < 8; ++mask) {
    auto value = [&](int v) { return ((mask >> v) & 1) != 0; };
    std::vector<Lit> assumptions;
    for (int v : vars) {
      assumptions.push_back(MkLit(encoder.VarForAtom(v), !value(v)));
    }
    EXPECT_EQ(solver.Solve(assumptions) == SolveResult::kSat,
              c.Evaluate(conjunction, value))
        << "mask=" << mask;
  }
}

TEST(TseitinTest, DeepCircuitEncodesWithoutRecursion) {
  // A 40k-deep strictly alternating and/or spine (alternation prevents the
  // same-kind flattening rewrite) would overflow the stack under a recursive
  // encoder; the iterative one must handle it.
  Circuit c;
  Solver solver;
  TseitinEncoder encoder(&c, &solver);
  int node = c.VarNode(0);
  for (int i = 1; i < 40'000; ++i) {
    node = (i % 2 == 0) ? c.AndNode({node, c.VarNode(i % 7)})
                        : c.OrNode({node, c.VarNode((i + 3) % 7)});
  }
  encoder.Assert(node);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
}

TEST(TseitinTest, RandomCircuitsAgreeWithEvaluation) {
  std::mt19937_64 rng(20260610);
  for (int trial = 0; trial < 30; ++trial) {
    Circuit c;
    std::vector<int> pool;
    for (int v = 0; v < 5; ++v) pool.push_back(c.VarNode(v));
    std::uniform_int_distribution<int> op(0, 3);
    std::uniform_int_distribution<size_t> pick(0, 100);
    for (int step = 0; step < 12; ++step) {
      int a = pool[pick(rng) % pool.size()];
      int b = pool[pick(rng) % pool.size()];
      switch (op(rng)) {
        case 0:
          pool.push_back(c.AndNode({a, b}));
          break;
        case 1:
          pool.push_back(c.OrNode({a, b}));
          break;
        case 2:
          pool.push_back(c.NotNode(a));
          break;
        default:
          pool.push_back(c.IffNode(a, b));
          break;
      }
    }
    CheckEquivalence(c, pool.back());
  }
}

}  // namespace
}  // namespace kbt::sat
