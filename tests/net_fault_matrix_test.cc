// Flaky-network matrix: every NetFaultKind, on every direction of the wire,
// against reads and applies — driven through the production ServeConnection
// frame loop over in-memory transports. The invariants, from docs/net.md:
//
//   * a read either returns the CORRECT answer or a clean typed error —
//     never a wrong answer, never a hang;
//   * an apply executes at most once per observed success, and every
//     ambiguous outcome is surfaced as maybe_executed();
//   * the server never crashes and subsequent connections still serve.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/transport.h"
#include "serve/server.h"

namespace kbt::net {
namespace {

Knowledgebase SmallKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 2}},
                          {{"P", {{"a"}}}, {"Q", {{"a", "b"}}}});
}

enum class FaultSide { kClientWrite, kClientRead, kServerWrite, kServerRead };

const char* SideName(FaultSide s) {
  switch (s) {
    case FaultSide::kClientWrite: return "client-write";
    case FaultSide::kClientRead: return "client-read";
    case FaultSide::kServerWrite: return "server-write";
    case FaultSide::kServerRead: return "server-read";
  }
  return "?";
}

const char* KindName(NetFaultKind k) {
  switch (k) {
    case NetFaultKind::kDropConnection: return "drop";
    case NetFaultKind::kTruncate: return "truncate";
    case NetFaultKind::kGarbage: return "garbage";
    case NetFaultKind::kDuplicate: return "duplicate";
    case NetFaultKind::kDelay: return "delay";
  }
  return "?";
}

/// A server plus a transport factory that injects ONE fault (side × kind) on
/// the first connection; reconnections are clean. Tracks every fault
/// transport it created so the test can assert the fault actually fired.
class FaultHarness {
 public:
  FaultHarness(FaultSide side, NetFaultKind kind)
      : server_(SmallKb()), net_(&server_, NetServerOptions()), side_(side),
        kind_(kind) {}

  ~FaultHarness() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  Client MakeClient() {
    ClientOptions options;
    options.sleep_on_backoff = false;
    options.max_attempts = 6;
    return Client([this] { return Factory(); }, options);
  }

  serve::Server& server() { return server_; }

 private:
  StatusOr<std::unique_ptr<Transport>> Factory() {
    auto [client_end, server_end] = MakePipePair();
    bool inject = !injected_;
    injected_ = true;

    std::shared_ptr<Transport> server_shared;
    if (inject &&
        (side_ == FaultSide::kServerWrite || side_ == FaultSide::kServerRead)) {
      auto fault = std::make_shared<FaultTransport>(std::move(server_end));
      if (side_ == FaultSide::kServerWrite) {
        fault->FailWriteAt(0, kind_, std::chrono::milliseconds(30));
      } else {
        fault->FailReadAt(1, kind_, std::chrono::milliseconds(30));
      }
      server_shared = std::move(fault);
    } else {
      server_shared = std::move(server_end);
    }
    threads_.emplace_back(
        [this, t = server_shared] { net_.ServeConnection(*t); });

    std::unique_ptr<Transport> client_transport = std::move(client_end);
    if (inject &&
        (side_ == FaultSide::kClientWrite || side_ == FaultSide::kClientRead)) {
      auto fault = std::make_unique<FaultTransport>(std::move(client_transport));
      if (side_ == FaultSide::kClientWrite) {
        fault->FailWriteAt(0, kind_, std::chrono::milliseconds(30));
      } else {
        fault->FailReadAt(0, kind_, std::chrono::milliseconds(30));
      }
      client_transport = std::move(fault);
    }
    return client_transport;
  }

  serve::Server server_;
  NetServer net_;
  FaultSide side_;
  NetFaultKind kind_;
  bool injected_ = false;
  std::vector<std::thread> threads_;
};

const FaultSide kSides[] = {FaultSide::kClientWrite, FaultSide::kClientRead,
                            FaultSide::kServerWrite, FaultSide::kServerRead};
const NetFaultKind kKinds[] = {NetFaultKind::kDropConnection,
                               NetFaultKind::kTruncate, NetFaultKind::kGarbage,
                               NetFaultKind::kDuplicate, NetFaultKind::kDelay};

TEST(NetFaultMatrixTest, ReadsAreCorrectOrTypedUnderEveryFault) {
  for (FaultSide side : kSides) {
    for (NetFaultKind kind : kKinds) {
      SCOPED_TRACE(std::string(SideName(side)) + " × " + KindName(kind));
      FaultHarness h(side, kind);
      Client client = h.MakeClient();

      // Two sequential reads with known answers: the first rides the faulty
      // connection, the second catches any stale-frame desync the first left
      // behind. Both must come back CORRECT (the one-shot fault is always
      // recoverable within the retry budget) — wrong answers are the one
      // outcome the protocol may never produce.
      auto r1 = client.Read({}, "P(a)");
      ASSERT_TRUE(r1.ok()) << r1.status().ToString();
      EXPECT_TRUE(r1->holds);
      auto r2 = client.Read({}, "P(b)");
      ASSERT_TRUE(r2.ok()) << r2.status().ToString();
      EXPECT_FALSE(r2->holds);
    }
  }
}

TEST(NetFaultMatrixTest, AppliesExecuteAtMostOncePerSuccess) {
  for (FaultSide side : kSides) {
    for (NetFaultKind kind : kKinds) {
      SCOPED_TRACE(std::string(SideName(side)) + " × " + KindName(kind));
      FaultHarness h(side, kind);
      Client client = h.MakeClient();

      size_t successes = 0, ambiguous = 0;
      for (int i = 0; i < 3; ++i) {
        auto version = client.Apply("tau{P(b)}");
        if (version.ok()) {
          ++successes;
        } else if (client.maybe_executed()) {
          ++ambiguous;
        } else {
          // A definite failure must be a typed transport/availability error,
          // and by contract the server did NOT execute it.
          StatusCode code = version.status().code();
          EXPECT_TRUE(code == StatusCode::kUnavailable ||
                      code == StatusCode::kIOError ||
                      code == StatusCode::kDataLoss)
              << version.status().ToString();
        }
      }
      uint64_t commits = h.server().stats().commits;
      // Every observed success is a commit; only ambiguous outcomes may add
      // to that. More commits than successes+ambiguous = double execution;
      // fewer than successes = a lost acknowledged write.
      EXPECT_GE(commits, successes);
      EXPECT_LE(commits, successes + ambiguous);
    }
  }
}

TEST(NetFaultMatrixTest, ServerSurvivesFaultsAndKeepsServing) {
  for (FaultSide side : kSides) {
    for (NetFaultKind kind : kKinds) {
      SCOPED_TRACE(std::string(SideName(side)) + " × " + KindName(kind));
      FaultHarness h(side, kind);
      {
        Client faulty = h.MakeClient();
        (void)faulty.Read({}, "P(a)");  // Outcome covered elsewhere.
      }
      // A brand-new clean connection must serve normally afterwards.
      Client fresh = h.MakeClient();
      auto r = fresh.Read({}, "P(a)");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->holds);
    }
  }
}

}  // namespace
}  // namespace kbt::net
