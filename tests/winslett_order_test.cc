#include "core/winslett_order.h"

#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(WinslettOrderTest, PaperExampleAfterDefinition21) {
  // db1 = <R:{(a1,a2)}, S:{(a1,a4)}>, db2 = <R:{(a1,a2)}, S:{(a1,a4),(a2,a3)}>,
  // db  = <R:{(a1,a2)}>. The paper concludes db1 ≤_db db2.
  Database db1 = *MakeDatabase({{"R", 2}, {"S", 2}},
                               {{"R", {{"a1", "a2"}}}, {"S", {{"a1", "a4"}}}});
  Database db2 = *MakeDatabase(
      {{"R", 2}, {"S", 2}},
      {{"R", {{"a1", "a2"}}}, {"S", {{"a1", "a4"}, {"a2", "a3"}}}});
  Database base = *MakeDatabase({{"R", 2}}, {{"R", {{"a1", "a2"}}}});
  EXPECT_EQ(*CompareCloseness(db1, db2, base), Closeness::kCloser);
  EXPECT_EQ(*CompareCloseness(db2, db1, base), Closeness::kFarther);
  EXPECT_TRUE(*CloserOrEqual(db1, db2, base));
  EXPECT_FALSE(*CloserOrEqual(db2, db1, base));
}

TEST(WinslettOrderTest, StageOneBeatsStageTwo) {
  // Candidate keeping the old relation intact is closer than one changing it,
  // regardless of how much larger its new relations are (paper: condition (1)
  // guarantees invariant-old-relation databases are closest).
  Schema s = *Schema::Of({{"R", 1}, {"New", 1}});
  Database base = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database keeps = *Database::Create(
      s, {MakeRelation(1, {{"a"}}), MakeRelation(1, {{"a"}, {"b"}, {"c"}})});
  Database changes = *Database::Create(s, {MakeRelation(1, {}), Relation(1)});
  EXPECT_EQ(*CompareCloseness(keeps, changes, base), Closeness::kCloser);
}

TEST(WinslettOrderTest, EqualDiffsTieBreakOnNewRelations) {
  Schema s = *Schema::Of({{"R", 1}, {"New", 1}});
  Database base = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database small = *Database::Create(s, {MakeRelation(1, {{"a"}}),
                                         MakeRelation(1, {{"b"}})});
  Database large = *Database::Create(s, {MakeRelation(1, {{"a"}}),
                                         MakeRelation(1, {{"b"}, {"c"}})});
  EXPECT_EQ(*CompareCloseness(small, large, base), Closeness::kCloser);
  EXPECT_EQ(*CompareCloseness(small, small, base), Closeness::kEqual);
}

TEST(WinslettOrderTest, IncomparableDiffs) {
  // Candidate 1 deletes a, candidate 2 deletes b: {a} vs {b} diffs.
  Database base = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  Database c1 = *MakeDatabase({{"R", 1}}, {{"R", {{"b"}}}});
  Database c2 = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  EXPECT_EQ(*CompareCloseness(c1, c2, base), Closeness::kIncomparable);
}

TEST(WinslettOrderTest, IncomparableAcrossStages) {
  // c1 has smaller old-diff but larger new content on a tie-breaking relation of
  // ANOTHER component: old diff ⊂ wins regardless of new relations.
  Schema s = *Schema::Of({{"R", 1}, {"New", 1}});
  Database base = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database c1 = *Database::Create(s, {MakeRelation(1, {{"a"}}),
                                      MakeRelation(1, {{"x"}, {"y"}})});
  Database c2 = *Database::Create(s, {MakeRelation(1, {}), MakeRelation(1, {})});
  EXPECT_EQ(*CompareCloseness(c1, c2, base), Closeness::kCloser);
}

TEST(WinslettOrderTest, SchemaMismatchesRejected) {
  Database base = *MakeDatabase({{"R", 1}}, {});
  Database c1 = *MakeDatabase({{"R", 1}}, {});
  Database other = *MakeDatabase({{"S", 1}}, {});
  EXPECT_FALSE(CompareCloseness(c1, other, base).ok());
  EXPECT_FALSE(CompareCloseness(other, other, base).ok());
}

TEST(WinslettOrderTest, MinimalElementsKeepsIncomparables) {
  Database base = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  Database keep = base;
  Database del_a = *MakeDatabase({{"R", 1}}, {{"R", {{"b"}}}});
  Database del_b = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database del_both = *MakeDatabase({{"R", 1}}, {{"R", {}}});
  auto minimal = *MinimalElements({del_a, del_b, del_both}, base);
  EXPECT_EQ(minimal.size(), 2u);  // del_both dominated by either single deletion.
  auto all = *MinimalElements({keep, del_a, del_b, del_both}, base);
  EXPECT_EQ(all.size(), 1u);  // keep (Δ = ∅) dominates everything.
  EXPECT_EQ(all[0], keep);
}

/// Property test: ≤_db is a partial order on random candidates (reflexive,
/// antisymmetric, transitive) and CompareCloseness is antisymmetric as a function.
class WinslettOrderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WinslettOrderPropertyTest, PartialOrderAxioms) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  // Candidates over schema (R/1 old, N/1 new), base over R/1.
  Schema s = *Schema::Of({{"R", 1}, {"N", 1}});
  auto random_subset = [&](std::initializer_list<std::string_view> pool) {
    std::vector<Tuple> tuples;
    std::bernoulli_distribution coin(0.5);
    for (auto name : pool) {
      if (coin(rng)) tuples.push_back(Tuple{Name(name)});
    }
    return Relation(1, std::move(tuples));
  };
  Database base = *MakeDatabase({{"R", 1}}, {});
  base = *base.WithRelation("R", random_subset({"a", "b"}));
  std::vector<Database> candidates;
  for (int i = 0; i < 8; ++i) {
    candidates.push_back(*Database::Create(
        s, {random_subset({"a", "b", "c"}), random_subset({"x", "y"})}));
  }
  for (const Database& x : candidates) {
    EXPECT_EQ(*CompareCloseness(x, x, base), Closeness::kEqual);
    for (const Database& y : candidates) {
      Closeness xy = *CompareCloseness(x, y, base);
      Closeness yx = *CompareCloseness(y, x, base);
      // Antisymmetry of the comparison function.
      if (xy == Closeness::kCloser) {
        EXPECT_EQ(yx, Closeness::kFarther);
      }
      if (xy == Closeness::kEqual) {
        EXPECT_EQ(yx, Closeness::kEqual);
        EXPECT_EQ(x, y);  // Equal closeness at same schema means equal databases.
      }
      for (const Database& z : candidates) {
        Closeness yz = *CompareCloseness(y, z, base);
        if ((xy == Closeness::kCloser || xy == Closeness::kEqual) &&
            (yz == Closeness::kCloser || yz == Closeness::kEqual)) {
          Closeness xz = *CompareCloseness(x, z, base);
          EXPECT_TRUE(xz == Closeness::kCloser || xz == Closeness::kEqual)
              << "transitivity violated";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WinslettOrderPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace kbt
