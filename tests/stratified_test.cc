#include "core/stratified.h"

#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/from_fo.h"
#include "datalog/to_fo.h"
#include "logic/printer.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(ToFirstOrderTest, RuleClosure) {
  datalog::Program p = *datalog::ParseProgram(
      "path(X, Z) :- path(X, Y), edge(Y, Z), X != Z.");
  Formula f = datalog::RuleToFirstOrder(p.rules[0]);
  EXPECT_EQ(ToString(f),
            "forall X, Y, Z: path(X, Y) & edge(Y, Z) & X != Z -> path(X, Z)");
}

TEST(ToFirstOrderTest, NegatedLiteralAndFact) {
  datalog::Program p = *datalog::ParseProgram(
      "iso(X) :- node(X), !edge(X, X). seed(a).");
  EXPECT_EQ(ToString(datalog::RuleToFirstOrder(p.rules[0])),
            "forall X: node(X) & !edge(X, X) -> iso(X)");
  EXPECT_EQ(ToString(datalog::RuleToFirstOrder(p.rules[1])), "seed(a)");
  EXPECT_FALSE(datalog::ToFirstOrder(datalog::Program{}).ok());
}

TEST(ToFirstOrderTest, RoundTripThroughFromFirstOrder) {
  // Positive programs survive Program -> FO -> Program.
  datalog::Program p = *datalog::ParseProgram(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
  Formula f = *datalog::ToFirstOrder(p);
  auto back = *datalog::FromFirstOrder(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ToString(), p.ToString());
}

TEST(InsertStratifiedTest, MatchesBottomUpEvaluation) {
  datalog::Program program = *datalog::ParseProgram(R"(
    reach(Y) :- start(X), edge(X, Y).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(X) :- node(X), !reach(X), !start(X).
  )");
  std::mt19937_64 rng(555);
  for (int trial = 0; trial < 5; ++trial) {
    testutil::Graph g = testutil::RandomGraph(5, 0.3, &rng);
    std::vector<Tuple> nodes;
    for (int i = 0; i < g.n; ++i) {
      nodes.push_back(Tuple{Name(testutil::VertexName(i))});
    }
    Database db = *Database::Create(
        *Schema::Of({{"node", 1}, {"start", 1}, {"edge", 2}}),
        {Relation(1, std::move(nodes)),
         Relation(1, {Tuple{Name(testutil::VertexName(0))}}),
         testutil::EdgeRelation(g)});

    // The paper's claim: sequential τ per stratum == iterated fixpoint.
    Knowledgebase via_tau =
        *InsertStratified(program, Knowledgebase::Singleton(db));
    ASSERT_EQ(via_tau.size(), 1u);
    Database expected = *datalog::Evaluate(program, db);
    // Align column order before comparing.
    std::vector<Symbol> order;
    for (const RelationDecl& d : via_tau.schema().decls()) {
      order.push_back(d.symbol);
    }
    EXPECT_EQ(via_tau.databases()[0], *expected.ProjectTo(order))
        << "graph edges: " << testutil::EdgeRelation(g).ToString();
  }
}

TEST(InsertStratifiedTest, PurePositiveProgramUsesOneStratum) {
  datalog::Program tc = *datalog::ParseProgram(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).");
  Knowledgebase kb = *MakeSingletonKb({{"edge", 2}},
                                      {{"edge", {{"a", "b"}, {"b", "c"}}}});
  Knowledgebase out = *InsertStratified(tc, kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("path"),
            MakeRelation(2, {{"a", "b"}, {"b", "c"}, {"a", "c"}}));
}

TEST(InsertStratifiedTest, RejectsUnstratifiableAndUnsafe) {
  Knowledgebase kb = *MakeSingletonKb({{"n", 1}}, {{"n", {{"a"}}}});
  datalog::Program cyclic =
      *datalog::ParseProgram("p(X) :- n(X), !q(X). q(X) :- n(X), !p(X).");
  EXPECT_FALSE(InsertStratified(cyclic, kb).ok());
  datalog::Program unsafe = *datalog::ParseProgram("p(X).");
  EXPECT_FALSE(InsertStratified(unsafe, kb).ok());
}

TEST(InsertStratifiedTest, RejectsStoredHeadPredicates) {
  Knowledgebase kb = *MakeSingletonKb({{"p", 1}}, {{"p", {{"a"}}}});
  datalog::Program program = *datalog::ParseProgram("p(X) :- p(X).");
  EXPECT_EQ(InsertStratified(program, kb).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kbt
