#include "logic/transform.h"

#include <gtest/gtest.h>

#include <random>

#include "eval/model_check.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(NnfTest, EliminatesImplicationsAndBiconditionals) {
  Formula f = *ParseFormula("forall x: P(x) -> Q(x, x)");
  Formula nnf = ToNnf(f);
  EXPECT_TRUE(IsNnf(nnf));
  EXPECT_EQ(ToString(nnf), "forall x: !P(x) | Q(x, x)");
  Formula iff = *ParseFormula("P(a) <-> P(b)");
  EXPECT_TRUE(IsNnf(ToNnf(iff)));
}

TEST(NnfTest, PushesNegationsThroughQuantifiers) {
  Formula f = *ParseFormula("!(forall x: exists y: Q(x, y))");
  Formula nnf = ToNnf(f);
  EXPECT_TRUE(IsNnf(nnf));
  EXPECT_EQ(ToString(nnf), "exists x: forall y: !Q(x, y)");
}

TEST(NnfTest, DeMorgan) {
  Formula f = *ParseFormula("!(P(a) & (P(b) | P(c)))");
  EXPECT_EQ(ToString(ToNnf(f)), "!P(a) | !P(b) & !P(c)");
}

TEST(NnfTest, IsNnfRejectsNestedNegation) {
  EXPECT_FALSE(IsNnf(*ParseFormula("!(P(a) & P(b))")));
  EXPECT_FALSE(IsNnf(*ParseFormula("P(a) -> P(b)")));
  EXPECT_TRUE(IsNnf(*ParseFormula("!P(a) | P(b)")));
  EXPECT_TRUE(IsNnf(*ParseFormula("a != b")));  // ¬(a=b) counts as a literal.
}

class NnfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NnfPropertyTest, PreservesSatisfactionOnRandomInputs) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7331 + 17);
  testutil::RandomSentenceGenerator gen(&rng, 0.0);
  for (int trial = 0; trial < 20; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula f = gen.Generate(4);
    Formula nnf = ToNnf(f);
    ASSERT_TRUE(IsNnf(nnf)) << ToString(f);
    EXPECT_EQ(*Satisfies(db, f), *Satisfies(db, nnf)) << ToString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnfPropertyTest, ::testing::Range(0, 10));

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(ToString(Simplify(*ParseFormula("P(a) & true"))), "P(a)");
  EXPECT_EQ(Simplify(*ParseFormula("P(a) & false"))->kind(), FormulaKind::kFalse);
  EXPECT_EQ(ToString(Simplify(*ParseFormula("P(a) | false"))), "P(a)");
  EXPECT_EQ(Simplify(*ParseFormula("P(a) | true"))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Simplify(*ParseFormula("a = a"))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Simplify(*ParseFormula("a = b"))->kind(), FormulaKind::kFalse);
  EXPECT_EQ(Simplify(*ParseFormula("false -> P(a)"))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(ToString(Simplify(*ParseFormula("true -> P(a)"))), "P(a)");
  EXPECT_EQ(ToString(Simplify(*ParseFormula("P(a) <-> true"))), "P(a)");
  EXPECT_EQ(ToString(Simplify(*ParseFormula("!!P(a)"))), "P(a)");
}

TEST(SimplifyTest, FlattensNestedConnectives) {
  Formula f = And(And(Atom("P", {Term::Const("a")}), Atom("P", {Term::Const("b")})),
                  Atom("P", {Term::Const("c")}));
  Formula s = Simplify(f);
  EXPECT_EQ(s->kind(), FormulaKind::kAnd);
  EXPECT_EQ(s->children().size(), 3u);
}

TEST(SimplifyTest, VariableEqualityKept) {
  // x = y between distinct variables is NOT foldable.
  Formula f = *ParseFormula("forall x, y: x = y -> Q(x, y)");
  Formula s = Simplify(f);
  EXPECT_EQ(ToString(s), ToString(f));
  // But x = x folds even under quantifiers.
  Formula g = *ParseFormula("forall x: x = x | P(x)");
  EXPECT_EQ(ToString(Simplify(g)), "forall x: true");
}

class SimplifyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyPropertyTest, PreservesSatisfactionOnRandomInputs) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 104729 + 19);
  testutil::RandomSentenceGenerator gen(&rng, 0.0);
  for (int trial = 0; trial < 20; ++trial) {
    Database db = testutil::RandomDatabase(&rng);
    Formula f = gen.Generate(4);
    Formula s = Simplify(f);
    // Simplification may remove constants from the formula, shrinking the active
    // domain; evaluate both over the original's domain for a fair comparison.
    std::vector<Value> domain = ActiveDomain(db, f);
    EXPECT_EQ(*Satisfies(db, f, domain), *Satisfies(db, s, domain)) << ToString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace kbt
