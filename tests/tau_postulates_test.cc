#include "core/tau.h"

#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;
using testutil::RandomKnowledgebase;
using testutil::RandomSentenceGenerator;

/// Fixed domain pinned by the Dom relation of testutil::RandomDatabase.
std::vector<Value> FixedDomain() {
  std::vector<Value> out;
  for (const std::string& c : testutil::TestConstants()) out.push_back(Name(c));
  return out;
}

/// Theorem 2.1, properties (i)–(viii): the update operator τ satisfies the
/// Katsuno–Mendelzon postulates. Each property is tested on randomized
/// knowledgebases and sentences (satisfaction evaluated over the pinned domain,
/// matching the B used inside μ).
class KmPostulateTest : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937_64 rng_{static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 0xB5};
};

// (i) τ_φ(kb) ⊨ φ: the new fact holds in every resulting world.
TEST_P(KmPostulateTest, PostulateI_ResultSatisfiesInsertion) {
  RandomSentenceGenerator gen(&rng_, 0.2);
  for (int trial = 0; trial < 6; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(3);
    Knowledgebase result = *Tau(phi, kb);
    for (const Database& db : result) {
      EXPECT_TRUE(*Satisfies(db, phi, FixedDomain())) << ToString(phi);
    }
  }
}

// (ii) kb ⊨ φ ⟹ τ_φ(kb) = kb.
TEST_P(KmPostulateTest, PostulateII_NoChangeWhenAlreadyTrue) {
  RandomSentenceGenerator gen(&rng_, 0.0);
  int hits = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(2);
    bool holds = true;
    for (const Database& db : kb) {
      if (!*Satisfies(db, phi, FixedDomain())) {
        holds = false;
        break;
      }
    }
    if (!holds) continue;
    ++hits;
    EXPECT_EQ(*Tau(phi, kb), kb) << ToString(phi);
  }
  // Deterministic instance so the postulate is never tested vacuously.
  Knowledgebase kb = RandomKnowledgebase(&rng_);
  Formula dom_fact = *ParseFormula("Dom(a)");
  EXPECT_EQ(*Tau(dom_fact, kb), kb);
  EXPECT_GE(hits, 0);
}

// (iii) kb ≠ ∅ and ⟦φ⟧ ≠ ∅ ⟹ τ_φ(kb) ≠ ∅.
TEST_P(KmPostulateTest, PostulateIII_ConsistencyPreserved) {
  RandomSentenceGenerator gen(&rng_, 0.2);
  for (int trial = 0; trial < 8; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(3);
    // Satisfiability of φ over (B, s): ask μ's own engine on one member — but to
    // stay independent, decide by brute force over the reference grounding.
    MuOptions ref;
    ref.strategy = MuStrategy::kReference;
    ref.max_reference_atoms = 16;
    StatusOr<Knowledgebase> one = Mu(phi, kb.databases()[0], ref);
    if (!one.ok()) continue;
    bool satisfiable = !one->empty();
    Knowledgebase result = *Tau(phi, kb);
    if (satisfiable) {
      EXPECT_FALSE(result.empty()) << ToString(phi);
    } else {
      EXPECT_TRUE(result.empty()) << ToString(phi);
    }
  }
}

// (iv) ⟦φ⟧ = ⟦ψ⟧ ⟹ τ_φ(kb) = τ_ψ(kb): irrelevance of syntax, the postulate the
// FUV baseline violates (§2.1). Tested with syntactic variants that preserve
// models, schema and constants.
TEST_P(KmPostulateTest, PostulateIV_IrrelevanceOfSyntax) {
  RandomSentenceGenerator gen(&rng_, 0.2);
  for (int trial = 0; trial < 5; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(3);
    Knowledgebase expected = *Tau(phi, kb);
    std::vector<Formula> variants = {
        Not(Not(phi)),
        And(phi, phi),
        Or(phi, phi),
        Or(phi, And(phi, phi)),
        And(std::vector<Formula>{phi, True()}),
    };
    for (const Formula& psi : variants) {
      EXPECT_EQ(KbAsStrings(*Tau(psi, kb)), KbAsStrings(expected))
          << "φ = " << ToString(phi) << ", ψ = " << ToString(psi);
    }
  }
}

// (v) τ_φ(kb) ∩ ⟦ψ⟧ ⊆ τ_{φ∧ψ}(kb).
TEST_P(KmPostulateTest, PostulateV_ConjunctionRefines) {
  RandomSentenceGenerator gen(&rng_, 0.0);
  for (int trial = 0; trial < 6; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(2);
    Formula psi = gen.Generate(2);
    Knowledgebase tau_phi = *Tau(phi, kb);
    Knowledgebase tau_both = *Tau(And(phi, psi), kb);
    for (const Database& db : tau_phi) {
      if (!*Satisfies(db, psi, FixedDomain())) continue;
      EXPECT_TRUE(tau_both.Contains(db))
          << "φ = " << ToString(phi) << ", ψ = " << ToString(psi)
          << ", db = " << db.ToString();
    }
  }
}

// (vi) τ_φ(kb) ⊨ ψ and τ_ψ(kb) ⊨ φ ⟹ τ_φ(kb) = τ_ψ(kb).
TEST_P(KmPostulateTest, PostulateVI_MutualEntailment) {
  RandomSentenceGenerator gen(&rng_, 0.0);
  for (int trial = 0; trial < 10; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(2);
    Formula psi = gen.Generate(2);
    Knowledgebase tau_phi = *Tau(phi, kb);
    Knowledgebase tau_psi = *Tau(psi, kb);
    auto entails = [&](const Knowledgebase& worlds, const Formula& f) {
      for (const Database& db : worlds) {
        if (!*Satisfies(db, f, FixedDomain())) return false;
      }
      return true;
    };
    if (entails(tau_phi, psi) && entails(tau_psi, phi)) {
      EXPECT_EQ(KbAsStrings(tau_phi), KbAsStrings(tau_psi))
          << "φ = " << ToString(phi) << ", ψ = " << ToString(psi);
    }
  }
}

// (vii) τ_φ({db}) ∩ τ_ψ({db}) ⊆ τ_{φ∨ψ}({db}).
TEST_P(KmPostulateTest, PostulateVII_DisjunctionOnSingletons) {
  RandomSentenceGenerator gen(&rng_, 0.0);
  for (int trial = 0; trial < 6; ++trial) {
    Knowledgebase kb = Knowledgebase::Singleton(testutil::RandomDatabase(&rng_));
    Formula phi = gen.Generate(2);
    Formula psi = gen.Generate(2);
    Knowledgebase tau_phi = *Tau(phi, kb);
    Knowledgebase tau_psi = *Tau(psi, kb);
    Knowledgebase tau_or = *Tau(Or(phi, psi), kb);
    for (const Database& db : tau_phi) {
      if (!tau_psi.Contains(db)) continue;
      EXPECT_TRUE(tau_or.Contains(db))
          << "φ = " << ToString(phi) << ", ψ = " << ToString(psi);
    }
  }
}

// (viii) τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2): update is pointwise over worlds.
TEST_P(KmPostulateTest, PostulateVIII_DistributesOverUnion) {
  RandomSentenceGenerator gen(&rng_, 0.2);
  for (int trial = 0; trial < 6; ++trial) {
    Knowledgebase kb1 = RandomKnowledgebase(&rng_);
    Knowledgebase kb2 = RandomKnowledgebase(&rng_);
    Formula phi = gen.Generate(3);
    Knowledgebase joint = *Tau(phi, *kb1.UnionWith(kb2));
    Knowledgebase split = *(*Tau(phi, kb1)).UnionWith(*Tau(phi, kb2));
    EXPECT_EQ(KbAsStrings(joint), KbAsStrings(split)) << ToString(phi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmPostulateTest, ::testing::Range(0, 8));

// Lemma 2.1: update commutes with neither ⊓ nor ⊔ — the paper's two witnesses.
TEST(Lemma21Test, GlbDoesNotCommuteWithTau) {
  // kb = {<{(a1,a2,a3)}>, <{(a1,a2,a4)}>} over R1/3.
  Database d1 = *MakeDatabase({{"R1", 3}}, {{"R1", {{"a1", "a2", "a3"}}}});
  Database d2 = *MakeDatabase({{"R1", 3}}, {{"R1", {{"a1", "a2", "a4"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({d1, d2});
  Formula phi = *ParseFormula("forall x1, x2: R1(x1, a2, x2) -> R2(x1)");

  // ⊓(τ_φ(kb)) = {(∅, {a1})}.
  Knowledgebase tau_then_glb = (*Tau(phi, kb)).Glb();
  ASSERT_EQ(tau_then_glb.size(), 1u);
  EXPECT_TRUE(tau_then_glb.databases()[0].RelationFor("R1")->empty());
  EXPECT_EQ(*tau_then_glb.databases()[0].RelationFor("R2"),
            MakeRelation(1, {{"a1"}}));

  // τ_φ(⊓(kb)) = {(∅, ∅)}.
  Knowledgebase glb_then_tau = *Tau(phi, kb.Glb());
  ASSERT_EQ(glb_then_tau.size(), 1u);
  EXPECT_TRUE(glb_then_tau.databases()[0].RelationFor("R1")->empty());
  EXPECT_TRUE(glb_then_tau.databases()[0].RelationFor("R2")->empty());

  EXPECT_NE(KbAsStrings(tau_then_glb), KbAsStrings(glb_then_tau));
}

TEST(Lemma21Test, LubDoesNotCommuteWithTau) {
  // kb = {<{(a1,a2)}>, <{(a2,a3)}>} over R3/2.
  Database d1 = *MakeDatabase({{"R3", 2}}, {{"R3", {{"a1", "a2"}}}});
  Database d2 = *MakeDatabase({{"R3", 2}}, {{"R3", {{"a2", "a3"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({d1, d2});
  Formula phi = *ParseFormula(
      "forall x1, x2, x3: R3(x1, x3) | (R3(x1, x2) & R3(x2, x3)) -> R4(x1, x3)");

  // τ_φ(⊔(kb)): R4 = {(a1,a2), (a2,a3), (a1,a3)}.
  Knowledgebase lub_then_tau = *Tau(phi, kb.Lub());
  ASSERT_EQ(lub_then_tau.size(), 1u);
  EXPECT_EQ(*lub_then_tau.databases()[0].RelationFor("R4"),
            MakeRelation(2, {{"a1", "a2"}, {"a2", "a3"}, {"a1", "a3"}}));

  // ⊔(τ_φ(kb)): R4 = {(a1,a2), (a2,a3)} — no chaining across worlds.
  Knowledgebase tau_then_lub = (*Tau(phi, kb)).Lub();
  ASSERT_EQ(tau_then_lub.size(), 1u);
  EXPECT_EQ(*tau_then_lub.databases()[0].RelationFor("R4"),
            MakeRelation(2, {{"a1", "a2"}, {"a2", "a3"}}));

  EXPECT_NE(KbAsStrings(lub_then_tau), KbAsStrings(tau_then_lub));
}

TEST(TauTest, EmptyKbStaysEmptyWithExtendedSchema) {
  Knowledgebase kb(*Schema::Of({{"R", 1}}));
  Knowledgebase out = *Tau(*ParseFormula("S(a)"), kb);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.schema().size(), 2u);
}

TEST(TauTest, StatsAreAggregated) {
  Knowledgebase kb = *Knowledgebase::FromDatabases(
      {*MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}}),
       *MakeDatabase({{"R", 1}}, {{"R", {{"b"}}}})});
  TauStats stats;
  ASSERT_TRUE(Tau(*ParseFormula("R(c)"), kb, MuOptions(), &stats).ok());
  EXPECT_EQ(stats.input_databases, 2u);
  EXPECT_EQ(stats.output_databases, 2u);
  EXPECT_EQ(stats.mu.minimal_models, 2u);
}

}  // namespace
}  // namespace kbt
