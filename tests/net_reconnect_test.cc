/// \file
/// Client reconnection after a mid-session broken pipe — the EnsureConnected
/// path. The scenario the fault matrix doesn't isolate: a client with a
/// WARM, previously-successful connection whose peer silently goes away
/// between calls (server restart, LB idle-kill). Contracts under test:
///
///   * reads transparently redial and retry: the caller sees the correct
///     answer, never a transport error for a survivable break;
///   * an apply whose request bytes never left the broken socket is retried
///     (provably not executed); one whose reply was lost after the request
///     left is NOT silently re-sent — the failure surfaces maybe_executed;
///   * the server's commit count never exceeds observed successes plus
///     surfaced ambiguities (no invisible double-execution).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/transport.h"
#include "serve/server.h"

namespace kbt::net {
namespace {

Knowledgebase SmallKb() {
  return *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
}

/// A server whose factory hands out pipe connections and keeps every server
/// end, so the test can sever the live connection under the client's feet.
class ReconnectHarness {
 public:
  ReconnectHarness() : server_(SmallKb()), net_(&server_, NetServerOptions()) {}

  ~ReconnectHarness() {
    SeverAll();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  Client MakeClient(size_t max_attempts = 4) {
    ClientOptions options;
    options.sleep_on_backoff = false;
    options.max_attempts = max_attempts;
    return Client([this] { return Factory(); }, options);
  }

  /// Closes every server end: the client's cached connection breaks as if
  /// the peer vanished.
  void SeverAll() {
    for (auto& t : server_ends_) t->Shutdown();
  }

  /// Makes the NEXT connection's server end drop the connection right after
  /// reading one request — request consumed, reply never sent.
  void DropReplyOnNextConnection() { drop_reply_next_ = true; }

  /// Makes the next dial fail outright (connection refused) — the one
  /// failure mode that PROVES the request never left.
  void RefuseNextConnect() { refuse_next_connect_ = true; }

  size_t connections_made() const { return connections_made_; }
  serve::Server& server() { return server_; }

 private:
  StatusOr<std::unique_ptr<Transport>> Factory() {
    if (refuse_next_connect_) {
      refuse_next_connect_ = false;
      return Status::Unavailable("injected: connection refused");
    }
    ++connections_made_;
    auto [client_end, server_end] = MakePipePair();
    std::shared_ptr<Transport> shared;
    if (drop_reply_next_) {
      drop_reply_next_ = false;
      auto fault = std::make_shared<FaultTransport>(std::move(server_end));
      fault->FailWriteAt(0, NetFaultKind::kDropConnection);
      shared = std::move(fault);
    } else {
      shared = std::move(server_end);
    }
    server_ends_.push_back(shared);
    threads_.emplace_back([this, shared] { net_.ServeConnection(*shared); });
    return std::unique_ptr<Transport>(std::move(client_end));
  }

  serve::Server server_;
  NetServer net_;
  bool drop_reply_next_ = false;
  bool refuse_next_connect_ = false;
  size_t connections_made_ = 0;
  std::vector<std::shared_ptr<Transport>> server_ends_;
  std::vector<std::thread> threads_;
};

TEST(NetReconnectTest, ReadsRedialAndRetryAfterBrokenPipe) {
  ReconnectHarness h;
  Client client = h.MakeClient();

  auto warm = client.Read({}, "P(a)");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->holds);
  ASSERT_EQ(h.connections_made(), 1u);

  // The peer goes away between calls. The next read must succeed anyway —
  // EnsureConnected redials inside the retry loop, invisibly to the caller.
  h.SeverAll();
  auto after = client.Read({}, "P(b)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->holds);
  EXPECT_EQ(h.connections_made(), 2u);
  EXPECT_GE(client.last_attempts(), 2u);  // The broken attempt was consumed.

  // Repeatedly: every severed connection heals the same way.
  for (int round = 0; round < 3; ++round) {
    h.SeverAll();
    auto r = client.Read({}, "P(a)");
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.status().ToString();
    EXPECT_TRUE(r->holds);
  }
  EXPECT_EQ(h.connections_made(), 5u);
}

TEST(NetReconnectTest, UnsentApplyIsRetriedAfterBrokenPipe) {
  ReconnectHarness h;
  Client client = h.MakeClient();
  ASSERT_TRUE(client.Ping().ok());

  // The peer is gone and the first redial is refused. A connect failure is
  // the one case where the request PROVABLY never left, so the client may —
  // and does — keep retrying until a clean connection commits it once.
  // (A failed WriteAll, by contrast, is conservatively ambiguous: bytes may
  // have reached the kernel buffer before the error.)
  h.SeverAll();
  client.Disconnect();
  h.RefuseNextConnect();
  auto version = client.Apply("tau{P(b)}");
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1u);
  EXPECT_FALSE(client.maybe_executed());
  EXPECT_GE(client.last_attempts(), 2u);
  EXPECT_EQ(h.server().stats().commits, 1u);  // Exactly once.
}

TEST(NetReconnectTest, LostReplyApplySurfacesMaybeExecutedNotASilentResend) {
  ReconnectHarness h;
  Client client = h.MakeClient();
  ASSERT_TRUE(client.Ping().ok());

  // Break the warm connection AND poison the redial: the retried request is
  // read by the server, then the connection dies before the reply. The
  // request left the socket — the client must NOT re-send blindly.
  h.DropReplyOnNextConnection();
  h.SeverAll();
  auto version = client.Apply("tau{P(c)}");
  ASSERT_FALSE(version.ok());
  EXPECT_TRUE(client.maybe_executed());

  // The ambiguity was real: the server did execute it. One commit, no
  // double-execution, and the caller was told it may have landed.
  uint64_t commits = h.server().stats().commits;
  EXPECT_LE(commits, 1u);
  auto probe = client.Read({}, "P(c)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->holds, commits == 1);
}

TEST(NetReconnectTest, SeveredConnectionsNeverInflateCommits) {
  ReconnectHarness h;
  Client client = h.MakeClient();

  size_t successes = 0, ambiguous = 0;
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) h.SeverAll();  // Every other apply rides a broken pipe.
    auto version = client.Apply("tau{P(b)}");
    if (version.ok()) {
      ++successes;
    } else if (client.maybe_executed()) {
      ++ambiguous;
    }
  }
  uint64_t commits = h.server().stats().commits;
  EXPECT_GE(commits, successes);
  EXPECT_LE(commits, successes + ambiguous);
}

}  // namespace
}  // namespace kbt::net
