/// \file
/// Tests for the domain-keyed frozen-CNF-prefix cache: hit/miss accounting,
/// value sharing (one encoded prefix per distinct domain), agreement with a
/// direct ground-and-encode, error caching, the ⊥-root fast path, and
/// exactly-once computation under concurrent access through the pool
/// (mirroring ground_cache_test.cc).

#include "exec/cnf_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "exec/pool.h"
#include "logic/parser.h"
#include "sat/tseitin.h"

namespace kbt::exec {
namespace {

std::vector<Value> Domain(std::initializer_list<std::string_view> names) {
  std::vector<Value> out;
  for (std::string_view n : names) out.push_back(Name(n));
  return out;
}

TEST(CnfCacheTest, HitMissAccounting) {
  Formula phi = *ParseSentence("forall x: R(x) -> S(x)");
  CnfCache cache;
  GrounderOptions opts;

  auto a1 = cache.GetOrBuild(phi, Domain({"a", "b"}), opts, nullptr);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto a2 = cache.GetOrBuild(phi, Domain({"a", "b"}), opts, nullptr);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same domain → the same shared prefix, not an equal copy.
  EXPECT_EQ(a1->get(), a2->get());

  auto b = cache.GetOrBuild(phi, Domain({"a", "c"}), opts, nullptr);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(a1->get(), b->get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(CnfCacheTest, MatchesDirectEncoding) {
  Formula phi = *ParseSentence("forall x, y: R(x, y) -> (S(x) | S(y))");
  std::vector<Value> domain = Domain({"a", "b", "c"});
  CnfCache cache;
  GrounderOptions opts;

  auto cached = cache.GetOrBuild(phi, domain, opts, nullptr);
  ASSERT_TRUE(cached.ok());
  const FrozenCnf& cnf = **cached;

  // The prefix must match what a fresh per-world encoder would build: ground
  // directly, encode into a fresh solver, compare sizes and the atom→var map.
  StatusOr<Grounding> direct = GroundSentence(phi, domain, opts);
  ASSERT_TRUE(direct.ok());
  sat::Solver solver;
  sat::TseitinEncoder encoder(&direct->circuit, &solver);
  encoder.Assert(direct->root);

  EXPECT_EQ(cnf.prefix.num_vars(), solver.num_vars());
  EXPECT_EQ(cnf.prefix.num_clauses(), solver.num_clauses());
  EXPECT_EQ(cnf.prefix.arena_words(), solver.arena_words());
  ASSERT_EQ(cnf.atom_var.size(), direct->atoms.size());
  for (int atom_id : cnf.grounding->mentioned) {
    EXPECT_EQ(cnf.atom_var[static_cast<size_t>(atom_id)],
              encoder.VarForAtom(atom_id));
  }
  // And the grounding inside the prefix is the shared CachedGrounding shape.
  EXPECT_EQ(cnf.grounding->grounding.root, direct->root);
  EXPECT_EQ(cnf.grounding->mentioned,
            direct->circuit.CollectVars(direct->root));
}

TEST(CnfCacheTest, SharesGroundingThroughGroundCache) {
  // When a GroundingCache is supplied, the prefix build goes through it: one
  // grounding serves both the CNF prefix and any non-SAT strategy lookups.
  Formula phi = *ParseSentence("forall x: R(x) -> S(x)");
  std::vector<Value> domain = Domain({"a", "b"});
  GroundingCache ground_cache;
  CnfCache cache;
  GrounderOptions opts;

  auto cnf = cache.GetOrBuild(phi, domain, opts, &ground_cache);
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(ground_cache.stats().misses, 1u);
  auto ground = ground_cache.GetOrGround(phi, domain, opts);
  ASSERT_TRUE(ground.ok());
  EXPECT_EQ((*cnf)->grounding.get(), ground->get());
}

TEST(CnfCacheTest, FalseRootSkipsEncoding) {
  // A sentence grounding to ⊥ (distinct constants never compare equal) never
  // reaches a solver; the cached prefix stays empty and lookups still hit.
  Formula phi = *ParseSentence("R(a) & a = b");
  CnfCache cache;
  GrounderOptions opts;
  auto cnf = cache.GetOrBuild(phi, Domain({"a", "b"}), opts, nullptr);
  ASSERT_TRUE(cnf.ok());
  const Grounding& g = (*cnf)->grounding->grounding;
  EXPECT_EQ(g.root, g.circuit.FalseNode());
  EXPECT_EQ((*cnf)->prefix.num_vars(), 0);
  EXPECT_EQ((*cnf)->prefix.num_clauses(), 0u);
}

TEST(CnfCacheTest, BudgetErrorIsCachedPerDomain) {
  Formula phi = *ParseSentence(
      "forall x, y, z: (R(x, y) & R(y, z)) -> (R(x, z) | S(x))");
  CnfCache cache;
  GrounderOptions opts;
  opts.max_nodes = 4;

  auto r1 = cache.GetOrBuild(phi, Domain({"a", "b", "c"}), opts, nullptr);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kResourceExhausted);
  // The error is remembered: a repeat lookup is a hit, not a re-build.
  auto r2 = cache.GetOrBuild(phi, Domain({"a", "b", "c"}), opts, nullptr);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CnfCacheTest, ConcurrentLookupsBuildOnce) {
  Formula phi = *ParseSentence("forall x, y: R(x, y) -> S(y, x)");
  CnfCache cache;
  GroundingCache ground_cache;
  GrounderOptions opts;
  std::vector<Value> domain = Domain({"a", "b", "c", "d"});

  constexpr size_t kLookups = 64;
  std::vector<std::shared_ptr<const FrozenCnf>> seen(kLookups);
  std::atomic<int> failures{0};
  {
    ThreadPool pool(4);
    pool.ParallelFor(kLookups, [&](size_t i, size_t) {
      auto r = cache.GetOrBuild(phi, domain, opts, &ground_cache);
      if (r.ok()) {
        seen[i] = *r;
      } else {
        ++failures;
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kLookups - 1);
  EXPECT_EQ(ground_cache.stats().misses, 1u);
  for (size_t i = 1; i < kLookups; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
}

}  // namespace
}  // namespace kbt::exec
