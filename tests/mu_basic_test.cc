#include "core/mu.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "logic/parser.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;

MuOptions Strategy(MuStrategy s) {
  MuOptions o;
  o.strategy = s;
  return o;
}

const MuStrategy kGeneralStrategies[] = {MuStrategy::kReference, MuStrategy::kSat};

TEST(MuBasicTest, InsertNewFact) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(b)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u) << MuStrategyName(s);
    EXPECT_EQ(*kb.databases()[0].RelationFor("R"),
              MakeRelation(1, {{"a"}, {"b"}}));
  }
}

TEST(MuBasicTest, InsertExistingFactIsIdentity) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(a)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_EQ(kb.databases()[0], db);
  }
}

TEST(MuBasicTest, DeleteFact) {
  // Example 1.2's "delete flight AC902": insert the denial of its existence.
  Database db = *MakeDatabase({{"R", 2}}, {{"R", {{"yyz", "yow"}, {"yow", "yul"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("!R(yyz, yow)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_EQ(*kb.databases()[0].RelationFor("R"), MakeRelation(2, {{"yow", "yul"}}));
  }
}

TEST(MuBasicTest, DisjunctiveInsertProducesIndefiniteness) {
  // [AbG85]: updates with multiple results are the source of indefiniteness.
  Database db = *MakeDatabase({{"R", 1}}, {});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(a) | R(b)"), db, Strategy(s));
    EXPECT_EQ(kb.size(), 2u) << MuStrategyName(s);
    EXPECT_EQ(KbAsStrings(kb),
              KbAsStrings(*Knowledgebase::FromDatabases(
                  {*MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}}),
                   *MakeDatabase({{"R", 1}}, {{"R", {{"b"}}}})})));
  }
}

TEST(MuBasicTest, DisjunctionAlreadySatisfiedStaysPut) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(a) | R(b)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_EQ(kb.databases()[0], db);
  }
}

TEST(MuBasicTest, ContradictionYieldsEmptyKb) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(a) & !R(a)"), db, Strategy(s));
    EXPECT_TRUE(kb.empty());
    EXPECT_EQ(kb.schema(), db.schema());
  }
}

TEST(MuBasicTest, TautologyKeepsDatabase) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R(a) | !R(a)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_EQ(kb.databases()[0], db);
  }
}

TEST(MuBasicTest, NewRelationMinimized) {
  // Inserting ∀x (R(x) → S(x)) with S new: minimal S = copy of R, R untouched.
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  for (MuStrategy s :
       {MuStrategy::kReference, MuStrategy::kSat, MuStrategy::kDatalog}) {
    Knowledgebase kb = *Mu(*ParseFormula("forall x: R(x) -> S(x)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u) << MuStrategyName(s);
    EXPECT_EQ(*kb.databases()[0].RelationFor("R"), MakeRelation(1, {{"a"}, {"b"}}));
    EXPECT_EQ(*kb.databases()[0].RelationFor("S"), MakeRelation(1, {{"a"}, {"b"}}));
  }
}

TEST(MuBasicTest, UniversalDeletionShrinksRelation) {
  // ∀x ¬R(x): delete everything.
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("forall x: !R(x)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_TRUE(kb.databases()[0].RelationFor("R")->empty());
  }
}

TEST(MuBasicTest, CardinalityConstraintHasManyMinimalModels) {
  // "Some element is not in R": |B| minimal models, each dropping one element.
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}, {"c"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("exists x: !R(x)"), db, Strategy(s));
    EXPECT_EQ(kb.size(), 3u) << MuStrategyName(s);
    for (const Database& m : kb) {
      EXPECT_EQ(m.RelationFor("R")->size(), 2u);
    }
  }
}

TEST(MuBasicTest, ZeroAryRelationUpdate) {
  Database db = *MakeDatabase({{"R0", 0}}, {});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb = *Mu(*ParseFormula("R0()"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u);
    EXPECT_TRUE(kb.databases()[0].RelationFor("R0")->Contains(Tuple()));
  }
}

TEST(MuBasicTest, SchemaExtensionOrder) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Knowledgebase kb = *Mu(*ParseFormula("S(b) & T(c)"), db);
  ASSERT_EQ(kb.size(), 1u);
  const Schema& s = kb.schema();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.decl(0).symbol, Name("R"));  // σ(db) first, then σ(φ) order.
  EXPECT_EQ(s.decl(1).symbol, Name("S"));
  EXPECT_EQ(s.decl(2).symbol, Name("T"));
}

TEST(MuBasicTest, FormulaConstantsExtendTheDomain) {
  // ∃x (S(x) ∧ x ≠ a) over db with only 'a': needs the formula constant 'z'.
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  for (MuStrategy s : kGeneralStrategies) {
    Knowledgebase kb =
        *Mu(*ParseFormula("exists x: S(x) & !(x = a) & (x = z)"), db, Strategy(s));
    ASSERT_EQ(kb.size(), 1u) << MuStrategyName(s);
    EXPECT_EQ(*kb.databases()[0].RelationFor("S"), MakeRelation(1, {{"z"}}));
  }
}

TEST(MuBasicTest, ExplicitStrategyErrorsWhenInapplicable) {
  Database db = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  // Not Horn (negation in head position).
  auto r1 = Mu(*ParseFormula("forall x: R(x) -> !S(x)"), db,
               Strategy(MuStrategy::kDatalog));
  EXPECT_EQ(r1.status().code(), StatusCode::kUnsupported);
  // Not definitional (head relation already in σ(db)).
  auto r2 = Mu(*ParseFormula("forall x: R(x) -> R(x)"), db,
               Strategy(MuStrategy::kDefinitional));
  EXPECT_EQ(r2.status().code(), StatusCode::kUnsupported);
}

TEST(MuBasicTest, ReferenceAtomBudgetEnforced) {
  Database db = *MakeDatabase({{"R", 2}},
                              {{"R", {{"a", "b"}, {"b", "c"}, {"c", "d"}}}});
  MuOptions opts = Strategy(MuStrategy::kReference);
  opts.max_reference_atoms = 4;
  auto result = Mu(*ParseFormula("forall x, y: R(x, y) -> R(y, x)"), db, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MuBasicTest, AutoDispatchPicksExpectedStrategy) {
  Database db = *MakeDatabase({{"R", 2}}, {{"R", {{"a", "b"}}}});
  MuStats stats;
  ASSERT_TRUE(Mu(*ParseFormula("R(a, a)"), db, MuOptions(), &stats).ok());
  EXPECT_EQ(stats.used, MuStrategy::kReference);  // Ground → Theorem 4.7 path.
  ASSERT_TRUE(Mu(*ParseFormula("forall x, y, z: (T(x, y) & R(y, z)) | R(x, z) "
                               "-> T(x, z)"),
                 db, MuOptions(), &stats)
                  .ok());
  EXPECT_EQ(stats.used, MuStrategy::kDatalog);  // Horn, new head → Theorem 4.8.
  ASSERT_TRUE(Mu(*ParseFormula("forall x: (exists y: R(x, y) | R(y, x)) -> V(x)"),
                 db, MuOptions(), &stats)
                  .ok());
  EXPECT_EQ(stats.used, MuStrategy::kDefinitional);
  ASSERT_TRUE(Mu(*ParseFormula("forall x: S(x) <-> !S2(x)"), db, MuOptions(), &stats)
                  .ok());
  EXPECT_EQ(stats.used, MuStrategy::kSat);  // General engine.
}

}  // namespace
}  // namespace kbt
