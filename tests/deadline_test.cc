// Deadline / cancellation properties, solver level and serve level.
//
// The contract under test (solver.h, serve/server.h):
//
//   * OFF-PATH IDENTITY — with no budget and no interrupt armed (or after
//     ClearLimits), the search is bit-identical to a limit-free solver; at
//     the serve level a read with no deadline/cancel/budget is bit-identical
//     to the pre-deadline build, and a deadline too generous to fire changes
//     no answer.
//   * CLEAN TRIPS — a tripped budget or expired token yields kUnknown
//     (solver) / kDeadlineExceeded (serve) with the solver backtracked to a
//     usable root: the same solver/session answers the next question
//     correctly with no reconstruction.
//   * NO WEDGING — a tiny deadline on an arbitrary read returns promptly
//     with either the correct answer or kDeadlineExceeded, never a hang and
//     never a wrong answer.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "logic/printer.h"
#include "sat/solver.h"
#include "serve/server.h"
#include "testutil.h"

namespace kbt {
namespace {

// ---------------------------------------------------------------------------
// Solver level

/// Random 3-SAT instance over `vars` variables loaded into `s`.
void LoadRandom3Sat(sat::Solver* s, int vars, int clauses,
                    std::mt19937_64* rng) {
  std::uniform_int_distribution<int> var(0, vars - 1);
  std::bernoulli_distribution sign(0.5);
  for (int i = 0; i < vars; ++i) s->NewVar();
  for (int c = 0; c < clauses; ++c) {
    s->AddClause({sat::MkLit(var(*rng), sign(*rng)),
                  sat::MkLit(var(*rng), sign(*rng)),
                  sat::MkLit(var(*rng), sign(*rng))});
  }
}

TEST(DeadlinePropertyTest, UntrippedLimitsAreBitIdenticalToNoLimits) {
  // A huge budget plus a token that never fires must not perturb the search:
  // same answers, same conflict/decision/propagation counts, every seed. The
  // only permitted difference is the interrupt-poll counter itself.
  for (int seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng_a(seed * 104729 + 1), rng_b = rng_a;
    sat::Solver plain, limited;
    LoadRandom3Sat(&plain, 14, 60, &rng_a);
    LoadRandom3Sat(&limited, 14, 60, &rng_b);

    CancelToken never;  // No deadline, never cancelled.
    limited.SetBudget(1'000'000'000, 1'000'000'000);
    limited.SetInterrupt(&never);

    sat::SolveResult ra = plain.Solve();
    sat::SolveResult rb = limited.Solve();
    ASSERT_EQ(ra, rb) << "seed " << seed;
    EXPECT_EQ(plain.stats().conflicts, limited.stats().conflicts);
    EXPECT_EQ(plain.stats().decisions, limited.stats().decisions);
    EXPECT_EQ(plain.stats().propagations, limited.stats().propagations);
    EXPECT_EQ(plain.stats().restarts, limited.stats().restarts);
    if (ra == sat::SolveResult::kSat) {
      for (sat::Var v = 0; v < 14; ++v) {
        EXPECT_EQ(plain.ModelValue(v), limited.ModelValue(v));
      }
    }
    EXPECT_EQ(plain.stats().interrupt_checks, 0u);
    EXPECT_GE(limited.stats().interrupt_checks, 1u);  // Polled at Solve entry.
    EXPECT_EQ(limited.stats().budget_trips, 0u);
  }
}

TEST(DeadlinePropertyTest, ClearLimitsRestoresTheLimitFreeSearchExactly) {
  for (int seed = 0; seed < 6; ++seed) {
    std::mt19937_64 rng_a(seed * 7 + 3), rng_b = rng_a;
    sat::Solver plain, cleared;
    LoadRandom3Sat(&plain, 14, 60, &rng_a);
    LoadRandom3Sat(&cleared, 14, 60, &rng_b);

    cleared.SetBudget(1, 1);  // Would trip almost immediately...
    cleared.ClearLimits();    // ...but is fully disarmed.

    EXPECT_EQ(plain.Solve(), cleared.Solve());
    EXPECT_EQ(plain.stats().conflicts, cleared.stats().conflicts);
    EXPECT_EQ(plain.stats().decisions, cleared.stats().decisions);
    EXPECT_EQ(plain.stats().propagations, cleared.stats().propagations);
    EXPECT_EQ(cleared.stats().interrupt_checks, 0u);
    EXPECT_EQ(cleared.stats().budget_trips, 0u);
  }
}

TEST(DeadlinePropertyTest, BudgetTripReturnsUnknownAndSolverStaysUsable) {
  // An over-constrained instance forces conflicts; a 1-conflict budget must
  // trip. Afterwards ClearLimits + re-Solve on the SAME solver must give the
  // true answer — the abort left the solver at a usable root.
  std::mt19937_64 rng(42), rng_ref(42);
  sat::Solver s, reference;
  LoadRandom3Sat(&s, 14, 90, &rng);
  LoadRandom3Sat(&reference, 14, 90, &rng_ref);
  sat::SolveResult truth = reference.Solve();
  ASSERT_NE(truth, sat::SolveResult::kUnknown);

  s.SetBudget(1, 0);
  sat::SolveResult limited = s.Solve();
  if (limited == sat::SolveResult::kUnknown) {
    EXPECT_GE(s.stats().budget_trips, 1u);
  }
  // Whether or not the first call already finished within budget, the solver
  // must answer correctly once the limits come off.
  s.ClearLimits();
  EXPECT_EQ(s.Solve(), truth);
}

TEST(DeadlinePropertyTest, CancelledTokenAbortsAtSolveEntry) {
  std::mt19937_64 rng(7);
  sat::Solver s;
  LoadRandom3Sat(&s, 14, 60, &rng);
  CancelToken token;
  token.Cancel();
  s.SetInterrupt(&token);
  EXPECT_EQ(s.Solve(), sat::SolveResult::kUnknown);
  EXPECT_GE(s.stats().interrupt_checks, 1u);

  s.ClearLimits();
  EXPECT_NE(s.Solve(), sat::SolveResult::kUnknown);  // Reusable.
}

TEST(DeadlinePropertyTest, ExpiredDeadlineTokenAbortsSolve) {
  std::mt19937_64 rng(11);
  sat::Solver s;
  LoadRandom3Sat(&s, 14, 60, &rng);
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds(-1));  // Already past.
  s.SetInterrupt(&token);
  EXPECT_EQ(s.Solve(), sat::SolveResult::kUnknown);
  s.ClearLimits();
  EXPECT_NE(s.Solve(), sat::SolveResult::kUnknown);
}

// ---------------------------------------------------------------------------
// Serve level

TEST(ServeDeadlineTest, CancelledRequestFailsTypedAndSessionRecovers) {
  serve::Server server(
      *MakeSingletonKb({{"P", 1}, {"Q", 2}}, {{"P", {{"a"}}}}));
  std::unique_ptr<serve::Session> session = server.StartSession();

  CancelToken cancelled;
  cancelled.Cancel();
  serve::ReadRequest request;
  request.consequent = "P(a)";
  request.cancel = &cancelled;
  auto r = session->Query(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_GE(server.stats().deadlines_exceeded, 1u);

  // The SAME session answers the next read correctly: the abort restored the
  // pinned solver.
  auto ok = session->Holds("P(a)");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->holds);
}

TEST(ServeDeadlineTest, GenerousDeadlineChangesNoAnswer) {
  // Property: for random kbs and random read chains, deadline_ms = 1 hour
  // (armed, polled, never fires) returns exactly what no deadline returns.
  std::mt19937_64 rng(20260808);
  testutil::RandomSentenceGenerator gen(&rng);
  for (int round = 0; round < 15; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    serve::Server server(kb);
    std::unique_ptr<serve::Session> session = server.StartSession();
    for (int q = 0; q < 3; ++q) {
      serve::ReadRequest request;
      request.antecedents = {ToString(gen.Generate(2))};
      request.consequent = ToString(gen.Generate(2));
      auto plain = session->Query(request);
      ASSERT_TRUE(plain.ok()) << plain.status().ToString();
      request.deadline_ms = 3'600'000;
      auto timed = session->Query(request);
      ASSERT_TRUE(timed.ok()) << timed.status().ToString();
      EXPECT_EQ(plain->holds, timed->holds) << "round " << round;
    }
  }
  // Deadline-armed reads polled the solver's interrupt token; with no SAT
  // work some rounds may skip polling, but across 45 reads at least one
  // descent solves.
}

TEST(ServeDeadlineTest, ArmedDeadlineShowsUpInInterruptCheckStats) {
  // Ground reads dispatch to the reference strategy and never enter the SAT
  // search; pin the SAT strategy so the armed token is actually polled.
  serve::ServerOptions options;
  options.engine.mu.strategy = MuStrategy::kSat;
  serve::Server server(
      *MakeSingletonKb({{"P", 1}, {"Q", 2}}, {{"P", {{"a"}}}}), options);
  std::unique_ptr<serve::Session> session = server.StartSession();
  serve::ReadRequest request;
  request.antecedents = {"P(b)"};
  request.consequent = "P(a)&P(b)";
  request.deadline_ms = 3'600'000;
  auto r = session->Query(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->holds);
  // The token was armed, so every μ solve polled it at entry.
  EXPECT_GE(server.stats().sat_interrupt_checks, 1u);
  EXPECT_EQ(server.stats().deadlines_exceeded, 0u);
}

TEST(ServeDeadlineTest, TinyDeadlineNeverWedgesAndNeverLies) {
  // A 1 ms deadline on random reads must come back promptly with either the
  // correct answer (verified against an undeadlined run) or a clean
  // kDeadlineExceeded — and the session stays usable either way.
  std::mt19937_64 rng(99);
  testutil::RandomSentenceGenerator gen(&rng);
  for (int round = 0; round < 10; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    serve::Server server(kb);
    std::unique_ptr<serve::Session> session = server.StartSession();

    serve::ReadRequest request;
    request.antecedents = {ToString(gen.Generate(2))};
    request.consequent = ToString(gen.Generate(2));
    auto truth = session->Query(request);
    ASSERT_TRUE(truth.ok());

    request.deadline_ms = 1;
    auto timed = session->Query(request);
    if (timed.ok()) {
      EXPECT_EQ(timed->holds, truth->holds) << "round " << round;
    } else {
      EXPECT_EQ(timed.status().code(), StatusCode::kDeadlineExceeded)
          << timed.status().ToString();
    }

    // Session reusable after either outcome.
    request.deadline_ms = 0;
    auto again = session->Query(request);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->holds, truth->holds);
  }
}

}  // namespace
}  // namespace kbt
