#include "logic/analysis.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "logic/printer.h"

namespace kbt {
namespace {

TEST(AnalysisTest, FreeVariables) {
  Formula f = Implies(Atom("R", {Term::Var("x"), Term::Var("y")}),
                      Exists("y", Atom("S", {Term::Var("y")})));
  std::set<Symbol> free = FreeVariables(f);
  EXPECT_EQ(free.size(), 2u);  // x free; outer y free; inner y bound.
  EXPECT_TRUE(free.count(Name("x")));
  EXPECT_TRUE(free.count(Name("y")));
  EXPECT_TRUE(IsSentence(Forall({Name("x"), Name("y")}, f)));
}

TEST(AnalysisTest, ShadowingRestoresOuterBinding) {
  // ∃x (P(x) ∧ ∃x Q(x,x)) — both occurrences bound.
  Formula f = Exists("x", And(Atom("P", {Term::Var("x")}),
                              Exists("x", Atom("Q", {Term::Var("x"),
                                                     Term::Var("x")}))));
  EXPECT_TRUE(IsSentence(f));
}

TEST(AnalysisTest, ConstantsSortedUnique) {
  Formula f = *ParseFormula("R(b, a) & R(a, c) & a = a");
  std::vector<Value> consts = ConstantsOf(f);
  EXPECT_EQ(consts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(consts.begin(), consts.end()));
}

TEST(AnalysisTest, SchemaCollectsRelationsWithArity) {
  Formula f = *ParseFormula("forall x: R1(x, x) -> R2(x)");
  Schema s = *SchemaOf(f);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(*s.ArityOf(Name("R1")), 2u);
  EXPECT_EQ(*s.ArityOf(Name("R2")), 1u);
}

TEST(AnalysisTest, SchemaRejectsInconsistentArity) {
  Formula f = And(Atom("R", {Term::Const("a")}),
                  Atom("R", {Term::Const("a"), Term::Const("b")}));
  EXPECT_FALSE(SchemaOf(f).ok());
}

TEST(AnalysisTest, SubstituteReplacesFreeOccurrencesOnly) {
  // x free in P(x) and bound in ∃x Q(x,x).
  Formula f = And(Atom("P", {Term::Var("x")}),
                  Exists("x", Atom("Q", {Term::Var("x"), Term::Var("x")})));
  Formula g = Substitute(f, Name("x"), Name("a"));
  EXPECT_EQ(ToString(g), "P(a) & (exists x: Q(x, x))");
}

TEST(AnalysisTest, SubstituteSharesUntouchedSubtrees) {
  Formula sub = Atom("P", {Term::Const("a")});
  Formula f = And(sub, Atom("Q", {Term::Var("x"), Term::Var("x")}));
  Formula g = Substitute(f, Name("x"), Name("b"));
  EXPECT_EQ(g->children()[0], sub);  // Pointer-equal: no copy.
}

TEST(AnalysisTest, QuantifierFreeAndGroundClassification) {
  EXPECT_TRUE(IsQuantifierFree(*ParseFormula("R(a) & !S(b)")));
  EXPECT_FALSE(IsQuantifierFree(*ParseFormula("exists x: R(x)")));
  EXPECT_TRUE(IsGround(*ParseFormula("R(a) | R(b) -> S(a)")));
  EXPECT_FALSE(IsGround(Atom("R", {Term::Var("x")})));
  // Quantifier-free but not ground.
  Formula qf_open = Atom("R", {Term::Var("x")});
  EXPECT_TRUE(IsQuantifierFree(qf_open));
  EXPECT_FALSE(IsGround(qf_open));
}

TEST(AnalysisTest, SizeAndDepth) {
  Formula f = *ParseFormula("forall x: (exists y: Q(x, y)) -> P(x)");
  EXPECT_EQ(QuantifierDepth(f), 2u);
  EXPECT_GE(FormulaSize(f), 5u);
  EXPECT_EQ(QuantifierDepth(*ParseFormula("R(a)")), 0u);
}

}  // namespace
}  // namespace kbt
