/// \file
/// Learned-clause minimization (self-subsumption in Analyze): the shrunk-literal
/// counter moves on conflict-heavy instances, solver reuse via Reset stays
/// bit-identical to a fresh solver, and minimized solving remains correct
/// against brute-force enumeration on random 3-CNF.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sat/solver.h"

namespace kbt::sat {
namespace {

/// PHP(holes+1, holes): resolution-hard UNSAT, dense with long reason chains —
/// exactly the shape self-subsumption shortens.
void AddPigeonhole(Solver* s, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<Var>> grid(
      static_cast<size_t>(pigeons),
      std::vector<Var>(static_cast<size_t>(holes)));
  for (auto& row : grid) {
    for (auto& v : row) v = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) {
      some.push_back(MkLit(grid[static_cast<size_t>(p)][static_cast<size_t>(h)]));
    }
    s->AddClause(some);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddClause(
            {MkLit(grid[static_cast<size_t>(p1)][static_cast<size_t>(h)], true),
             MkLit(grid[static_cast<size_t>(p2)][static_cast<size_t>(h)], true)});
      }
    }
  }
}

TEST(SatMinimizeTest, PigeonholeShrinksLearnedClauses) {
  Solver s;
  AddPigeonhole(&s, 6);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  // Self-subsumption must actually fire on this instance.
  EXPECT_GT(s.stats().minimized_literals, 0u);
}

TEST(SatMinimizeTest, RandomCnfAgreesWithBruteForce) {
  std::mt19937_64 rng(42);
  constexpr int kVars = 10;
  std::uniform_int_distribution<int> var(0, kVars - 1);
  std::bernoulli_distribution sign(0.5);
  uint64_t total_minimized = 0;
  for (int inst = 0; inst < 60; ++inst) {
    int num_clauses = 42;  // ~4.2 ratio: near threshold, mixed outcomes.
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      clauses.push_back({MkLit(var(rng), sign(rng)), MkLit(var(rng), sign(rng)),
                         MkLit(var(rng), sign(rng))});
    }

    bool brute_sat = false;
    for (uint32_t mask = 0; mask < (uint32_t{1} << kVars) && !brute_sat; ++mask) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool some = false;
        for (Lit l : clause) {
          bool value = ((mask >> VarOf(l)) & 1) != 0;
          if (IsNegated(l) ? !value : value) {
            some = true;
            break;
          }
        }
        if (!some) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }

    Solver s;
    for (int i = 0; i < kVars; ++i) s.NewVar();
    for (const auto& clause : clauses) s.AddClause(clause);
    SolveResult r = s.Solve();
    EXPECT_EQ(r == SolveResult::kSat, brute_sat) << "instance " << inst;
    if (r == SolveResult::kSat) {
      // The model must satisfy every clause (minimization is sound).
      for (const auto& clause : clauses) {
        bool some = false;
        for (Lit l : clause) {
          if (s.ModelValue(VarOf(l)) != IsNegated(l)) some = true;
        }
        EXPECT_TRUE(some) << "instance " << inst;
      }
    }
    total_minimized += s.stats().minimized_literals;
  }
  // Across 60 near-threshold instances minimization fires somewhere.
  EXPECT_GT(total_minimized, 0u);
}

TEST(SatMinimizeTest, ResetMatchesFreshSolverBitForBit) {
  // Same call sequence on a reset solver and on a fresh one: identical
  // results, identical search statistics (the τ worker-pool contract).
  auto drive = [](Solver* s) {
    AddPigeonhole(s, 5);
    SolveResult r1 = s->Solve();
    EXPECT_EQ(r1, SolveResult::kUnsat);
  };

  Solver reused;
  // Prime with unrelated junk so Reset has real state to clear.
  for (int i = 0; i < 50; ++i) reused.NewVar();
  for (int i = 0; i + 2 < 50; ++i) {
    reused.AddClause({MkLit(i), MkLit(i + 1, true), MkLit(i + 2)});
  }
  EXPECT_EQ(reused.Solve(), SolveResult::kSat);
  reused.Reset();
  EXPECT_EQ(reused.num_vars(), 0);
  EXPECT_EQ(reused.num_clauses(), 0u);
  EXPECT_FALSE(reused.inconsistent());
  drive(&reused);

  Solver fresh;
  drive(&fresh);

  EXPECT_EQ(reused.stats().conflicts, fresh.stats().conflicts);
  EXPECT_EQ(reused.stats().decisions, fresh.stats().decisions);
  EXPECT_EQ(reused.stats().propagations, fresh.stats().propagations);
  EXPECT_EQ(reused.stats().learned_clauses, fresh.stats().learned_clauses);
  EXPECT_EQ(reused.stats().minimized_literals, fresh.stats().minimized_literals);
  EXPECT_EQ(reused.num_clauses(), fresh.num_clauses());
  EXPECT_EQ(reused.arena_words(), fresh.arena_words());
}

TEST(SatMinimizeTest, ResetAfterInconsistentSolverRecovers) {
  Solver s;
  Var v = s.NewVar();
  s.AddClause({MkLit(v)});
  s.AddClause({MkLit(v, true)});
  EXPECT_TRUE(s.inconsistent());
  s.Reset();
  EXPECT_FALSE(s.inconsistent());
  Var w = s.NewVar();
  s.AddClause({MkLit(w)});
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(w));
}

}  // namespace
}  // namespace kbt::sat
