#include "rel/overlay.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/engine.h"
#include "rel/knowledgebase.h"

namespace kbt {
namespace {

// Schema with a binary, a unary and a nullary relation, so every delta shape
// (including the empty-tuple edge cases) shows up in the randomized workloads.
Schema TestSchema() { return *Schema::Of({{"R", 2}, {"S", 1}, {"Z", 0}}); }

Value Val(int i) { return Name("c" + std::to_string(i)); }

Relation RandomRelation(std::mt19937& rng, size_t arity, int universe,
                        double density) {
  if (arity == 0) {
    return std::bernoulli_distribution(density)(rng)
               ? Relation(0, {Tuple{}})
               : Relation(0);
  }
  Relation::Builder b(arity);
  std::bernoulli_distribution keep(density);
  std::uniform_int_distribution<int> pick(0, universe - 1);
  int rows = std::uniform_int_distribution<int>(0, 6)(rng);
  for (int r = 0; r < rows; ++r) {
    if (!keep(rng)) continue;
    Value* row = b.AppendRow();
    for (size_t c = 0; c < arity; ++c) row[c] = Val(pick(rng));
  }
  return b.Build();
}

Database RandomDatabase(std::mt19937& rng, int universe = 4,
                        double density = 0.7) {
  Schema schema = TestSchema();
  std::vector<Relation> rels;
  for (const RelationDecl& d : schema.decls()) {
    rels.push_back(RandomRelation(rng, d.arity, universe, density));
  }
  return *Database::Create(std::move(schema), std::move(rels));
}

// A random small edit of `base`: flip a few tuple memberships.
Database RandomEdit(std::mt19937& rng, const Database& base) {
  Database out = base;
  std::uniform_int_distribution<size_t> pick_pos(0, base.schema().size() - 1);
  int edits = std::uniform_int_distribution<int>(0, 4)(rng);
  for (int e = 0; e < edits; ++e) {
    size_t p = pick_pos(rng);
    const Relation& r = out.relation_at(p);
    if (r.arity() == 0) {
      out.ReplaceRelation(p, r.empty() ? Relation(0, {Tuple{}}) : Relation(0));
      continue;
    }
    Relation flipped = RandomRelation(rng, r.arity(), 4, 0.8);
    out.ReplaceRelation(p, r.SymmetricDifference(flipped));
  }
  return out;
}

TEST(OverlayTest, FromDiffApplyToRoundTrip) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    Database base = RandomDatabase(rng);
    Database world = RandomEdit(rng, base);
    WorldOverlay ov = WorldOverlay::FromDiff(base, world);
    EXPECT_TRUE(ov.Validate(base).ok());
    EXPECT_EQ(ov.ApplyTo(base), world);
    EXPECT_EQ(ov.identity(), base == world);
  }
}

TEST(OverlayTest, FromDiffIsUniqueRepresentation) {
  std::mt19937 rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    Database base = RandomDatabase(rng);
    Database w1 = RandomEdit(rng, base);
    Database w2 = RandomEdit(rng, base);
    WorldOverlay o1 = WorldOverlay::FromDiff(base, w1);
    WorldOverlay o2 = WorldOverlay::FromDiff(base, w2);
    EXPECT_EQ(w1 == w2, o1 == o2);
    if (o1 == o2) EXPECT_EQ(o1.Hash(), o2.Hash());
  }
}

TEST(OverlayTest, ComposeMatchesSequentialApplication) {
  std::mt19937 rng(13);
  for (int iter = 0; iter < 300; ++iter) {
    Database base = RandomDatabase(rng);
    Database mid = RandomEdit(rng, base);
    Database fin = RandomEdit(rng, mid);
    WorldOverlay first = WorldOverlay::FromDiff(base, mid);
    WorldOverlay second = WorldOverlay::FromDiff(mid, fin);
    WorldOverlay composed = WorldOverlay::Compose(first, second);
    // The composition is canonical relative to the *original* base and lands
    // on the final world in one application.
    EXPECT_TRUE(composed.Validate(base).ok());
    EXPECT_EQ(composed.ApplyTo(base), fin);
    EXPECT_EQ(composed, WorldOverlay::FromDiff(base, fin));
  }
}

TEST(OverlayTest, CompareWorldsOnBaseMatchesFlatOrder) {
  std::mt19937 rng(17);
  for (int iter = 0; iter < 500; ++iter) {
    Database base = RandomDatabase(rng);
    Database w1 = RandomEdit(rng, base);
    Database w2 = RandomEdit(rng, base);
    WorldOverlay o1 = WorldOverlay::FromDiff(base, w1);
    WorldOverlay o2 = WorldOverlay::FromDiff(base, w2);
    int cmp = CompareWorldsOnBase(base, o1, o2);
    if (w1 < w2) {
      EXPECT_LT(cmp, 0) << w1.ToString() << " vs " << w2.ToString();
    } else if (w2 < w1) {
      EXPECT_GT(cmp, 0) << w1.ToString() << " vs " << w2.ToString();
    } else {
      EXPECT_EQ(cmp, 0) << w1.ToString() << " vs " << w2.ToString();
    }
    EXPECT_EQ(cmp, -CompareWorldsOnBase(base, o2, o1));
  }
}

TEST(OverlayTest, ApplyDeltaSharesStorageWhenUntouched) {
  Database base = *MakeDatabase({{"R", 2}}, {{"R", {{"a", "b"}, {"c", "d"}}}});
  Database same = base;
  WorldOverlay ov = WorldOverlay::FromDiff(base, same);
  EXPECT_TRUE(ov.identity());
  Database applied = ov.ApplyTo(base);
  // Copy-on-write: identical worlds share the relation buffer.
  EXPECT_EQ(applied.relation_at(0).StorageId(), base.relation_at(0).StorageId());
}

TEST(OverlayTest, NullaryOrderingMatchesFlat) {
  // Empty nullary < non-empty nullary in the flat order (rows tiebreak); the
  // overlay comparison must agree in both directions over both base states.
  Schema schema = *Schema::Of({{"Z", 0}});
  for (bool base_has : {false, true}) {
    Database base = *Database::Create(
        schema, {base_has ? Relation(0, {Tuple{}}) : Relation(0)});
    Database with = *Database::Create(schema, {Relation(0, {Tuple{}})});
    Database without = *Database::Create(schema, {Relation(0)});
    WorldOverlay ow = WorldOverlay::FromDiff(base, with);
    WorldOverlay owo = WorldOverlay::FromDiff(base, without);
    EXPECT_LT(CompareWorldsOnBase(base, owo, ow), 0);
    EXPECT_GT(CompareWorldsOnBase(base, ow, owo), 0);
    EXPECT_EQ(CompareWorldsOnBase(base, ow, ow), 0);
  }
}

TEST(OverlayTest, FromDeltasSortsAndDropsEmpty) {
  std::vector<RelationDelta> deltas(3);
  deltas[0].pos = 2;
  deltas[0].adds = Relation(0, {Tuple{}});
  deltas[1].pos = 0;
  deltas[1].adds = MakeRelation(2, {{"x", "y"}});
  deltas[2].pos = 1;  // Empty: dropped.
  WorldOverlay ov = WorldOverlay::FromDeltas(std::move(deltas));
  ASSERT_EQ(ov.deltas().size(), 2u);
  EXPECT_EQ(ov.deltas()[0].pos, 0u);
  EXPECT_EQ(ov.deltas()[1].pos, 2u);
  EXPECT_EQ(ov.TupleCount(), 2u);
}

TEST(OverlayTest, ValidateRejectsBrokenInvariants) {
  Database base = *MakeDatabase({{"R", 2}, {"S", 1}},
                                {{"R", {{"a", "b"}}}, {"S", {{"a"}}}});
  {
    // Adds overlapping the base relation.
    std::vector<RelationDelta> d(1);
    d[0].pos = 0;
    d[0].adds = MakeRelation(2, {{"a", "b"}});
    EXPECT_EQ(WorldOverlay::FromDeltas(std::move(d)).Validate(base).code(),
              StatusCode::kDataLoss);
  }
  {
    // Dels not contained in the base relation.
    std::vector<RelationDelta> d(1);
    d[0].pos = 1;
    d[0].dels = MakeRelation(1, {{"z"}});
    EXPECT_EQ(WorldOverlay::FromDeltas(std::move(d)).Validate(base).code(),
              StatusCode::kDataLoss);
  }
  {
    // Position outside the schema.
    std::vector<RelationDelta> d(1);
    d[0].pos = 5;
    d[0].adds = MakeRelation(2, {{"x", "y"}});
    EXPECT_EQ(WorldOverlay::FromDeltas(std::move(d)).Validate(base).code(),
              StatusCode::kDataLoss);
  }
  {
    // Arity mismatch.
    std::vector<RelationDelta> d(1);
    d[0].pos = 0;
    d[0].adds = MakeRelation(1, {{"x"}});
    EXPECT_EQ(WorldOverlay::FromDeltas(std::move(d)).Validate(base).code(),
              StatusCode::kDataLoss);
  }
  {
    // A valid overlay passes.
    std::vector<RelationDelta> d(1);
    d[0].pos = 0;
    d[0].adds = MakeRelation(2, {{"x", "y"}});
    d[0].dels = MakeRelation(2, {{"a", "b"}});
    EXPECT_TRUE(WorldOverlay::FromDeltas(std::move(d)).Validate(base).ok());
  }
}

}  // namespace
}  // namespace kbt
