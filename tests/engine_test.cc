#include "core/engine.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/kbt.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(EngineTest, QuickstartTransitiveClosure) {
  // The README quickstart: reachable cities via Example 1's sentence.
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb(
      {{"R1", 2}}, {{"R1", {{"tor", "ott"}, {"ott", "mtl"}, {"mtl", "qbc"}}}});
  Knowledgebase out = *engine.Apply(
      "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } "
      ">> pi[R2]",
      kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("R2"),
            MakeRelation(2, {{"tor", "ott"},
                             {"tor", "mtl"},
                             {"tor", "qbc"},
                             {"ott", "mtl"},
                             {"ott", "qbc"},
                             {"mtl", "qbc"}}));
}

TEST(EngineTest, InsertShorthand) {
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb({{"R1", 2}}, {{"R1", {{"tor", "ott"}}}});
  Knowledgebase out = *engine.Insert("!R1(tor, ott)", kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.databases()[0].RelationFor("R1")->empty());
}

TEST(EngineTest, ParseErrorsPropagate) {
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb({{"R1", 2}}, {});
  EXPECT_EQ(engine.Apply("tau{ ((( }", kb).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(engine.Insert("R1(a", kb).status().code(), StatusCode::kParseError);
}

TEST(EngineTest, TraceCollection) {
  EngineOptions options;
  options.trace = true;
  Engine engine(options);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});
  ASSERT_TRUE(engine.Apply("tau{ R(b) } >> lub", kb).ok());
  ASSERT_EQ(engine.last_trace().steps.size(), 2u);
  EXPECT_EQ(engine.last_trace().steps[0].step, "tau{ R(b) }");
}

TEST(EngineTest, OptionsControlStrategy) {
  EngineOptions options;
  options.mu.strategy = MuStrategy::kDatalog;
  Engine engine(options);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});
  // Not Horn: the forced strategy must surface as an error.
  EXPECT_EQ(engine.Insert("forall x: R(x) -> !S(x)", kb).status().code(),
            StatusCode::kUnsupported);
}

TEST(EngineTest, MakeHelpersValidate) {
  EXPECT_FALSE(MakeDatabase({{"R", 1}, {"R", 1}}, {}).ok());  // Dup symbol.
  EXPECT_TRUE(MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}}).ok());
  EXPECT_EQ(MakeRelation(2, {{"a", "b"}}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Pipeline durability: canonical rendering + commit-on-apply (the seam the
// durable store and the serving write path rely on).

/// Property: Pipeline::ToString round-trips through ParsePipeline — the
/// rendering is a fixpoint of the printer, and applying original and reparse
/// to the same kb yields identical knowledgebases. Covers every step kind with
/// random sentences.
TEST(EngineTest, PipelineToStringRoundTripsThroughParsePipeline) {
  std::mt19937_64 rng(88);
  testutil::RandomSentenceGenerator gen(&rng);
  std::uniform_int_distribution<int> steps(1, 4);
  std::uniform_int_distribution<int> kind(0, 4);

  for (int round = 0; round < 25; ++round) {
    Pipeline pipeline;
    int n = steps(rng);
    for (int i = 0; i < n; ++i) {
      switch (kind(rng)) {
        case 0:
          pipeline.Tau(gen.Generate(2));
          break;
        case 1:
          pipeline.Glb();
          break;
        case 2:
          pipeline.Lub();
          break;
        case 3:
          pipeline.Project(std::vector<std::string>{"P", "Q"});
          break;
        default:
          pipeline.Filter(gen.Generate(2));
          break;
      }
    }
    const std::string rendered = pipeline.ToString();
    auto reparsed = ParsePipeline(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered << ": "
                               << reparsed.status().message();
    EXPECT_EQ(reparsed->ToString(), rendered);  // Printer fixpoint.

    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    auto original_result = pipeline.Apply(kb);
    auto reparsed_result = reparsed->Apply(kb);
    ASSERT_EQ(original_result.ok(), reparsed_result.ok()) << rendered;
    if (original_result.ok()) {
      EXPECT_EQ(*original_result, *reparsed_result) << rendered;
    }
  }
}

/// In-memory TransformLog that records every commit.
class RecordingLog final : public TransformLog {
 public:
  Status Commit(std::string_view expression,
                const Knowledgebase& result) override {
    commits_.emplace_back(std::string(expression), result);
    return Status::OK();
  }
  const std::vector<std::pair<std::string, Knowledgebase>>& commits() const {
    return commits_;
  }

 private:
  std::vector<std::pair<std::string, Knowledgebase>> commits_;
};

TEST(EngineTest, PipelineApplyCommitsCanonicalRendering) {
  Engine engine;
  RecordingLog log;
  engine.AttachLog(&log);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});

  Pipeline pipeline;
  pipeline.Tau("R(b) | R(c)").Glb();
  auto result = engine.Apply(pipeline, kb);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(log.commits().size(), 1u);
  EXPECT_EQ(log.commits()[0].first, pipeline.ToString());
  EXPECT_EQ(log.commits()[0].second, *result);

  // Replaying the committed text reproduces the committed result — what store
  // recovery does with this record.
  auto replayed = engine.Apply(log.commits()[0].first, kb);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, *result);
}

TEST(EngineTest, TextApplyCommitsInputVerbatim) {
  Engine engine;
  RecordingLog log;
  engine.AttachLog(&log);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});

  const std::string expression = "tau{  R(b)|R(c) }>>glb";  // Odd spacing kept.
  ASSERT_TRUE(engine.Apply(expression, kb).ok());
  ASSERT_EQ(log.commits().size(), 1u);
  EXPECT_EQ(log.commits()[0].first, expression);
}

TEST(EngineTest, EachApplyOverloadCommitsExactlyOnce) {
  Engine engine;
  RecordingLog log;
  engine.AttachLog(&log);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});

  ASSERT_TRUE(engine.Apply("tau{ R(b) }", kb).ok());
  EXPECT_EQ(log.commits().size(), 1u);
  Pipeline pipeline;
  pipeline.Tau("R(c)");
  ASSERT_TRUE(engine.Apply(pipeline, kb).ok());
  EXPECT_EQ(log.commits().size(), 2u);
  ASSERT_TRUE(engine.Insert("R(d)", kb).ok());  // Insert goes via the pipeline
  EXPECT_EQ(log.commits().size(), 3u);          // overload: still one commit.
}

}  // namespace
}  // namespace kbt
