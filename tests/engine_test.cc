#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/kbt.h"
#include "testutil.h"

namespace kbt {
namespace {

TEST(EngineTest, QuickstartTransitiveClosure) {
  // The README quickstart: reachable cities via Example 1's sentence.
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb(
      {{"R1", 2}}, {{"R1", {{"tor", "ott"}, {"ott", "mtl"}, {"mtl", "qbc"}}}});
  Knowledgebase out = *engine.Apply(
      "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } "
      ">> pi[R2]",
      kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("R2"),
            MakeRelation(2, {{"tor", "ott"},
                             {"tor", "mtl"},
                             {"tor", "qbc"},
                             {"ott", "mtl"},
                             {"ott", "qbc"},
                             {"mtl", "qbc"}}));
}

TEST(EngineTest, InsertShorthand) {
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb({{"R1", 2}}, {{"R1", {{"tor", "ott"}}}});
  Knowledgebase out = *engine.Insert("!R1(tor, ott)", kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.databases()[0].RelationFor("R1")->empty());
}

TEST(EngineTest, ParseErrorsPropagate) {
  Engine engine;
  Knowledgebase kb = *MakeSingletonKb({{"R1", 2}}, {});
  EXPECT_EQ(engine.Apply("tau{ ((( }", kb).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(engine.Insert("R1(a", kb).status().code(), StatusCode::kParseError);
}

TEST(EngineTest, TraceCollection) {
  EngineOptions options;
  options.trace = true;
  Engine engine(options);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});
  ASSERT_TRUE(engine.Apply("tau{ R(b) } >> lub", kb).ok());
  ASSERT_EQ(engine.last_trace().steps.size(), 2u);
  EXPECT_EQ(engine.last_trace().steps[0].step, "tau{ R(b) }");
}

TEST(EngineTest, OptionsControlStrategy) {
  EngineOptions options;
  options.mu.strategy = MuStrategy::kDatalog;
  Engine engine(options);
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}}}});
  // Not Horn: the forced strategy must surface as an error.
  EXPECT_EQ(engine.Insert("forall x: R(x) -> !S(x)", kb).status().code(),
            StatusCode::kUnsupported);
}

TEST(EngineTest, MakeHelpersValidate) {
  EXPECT_FALSE(MakeDatabase({{"R", 1}, {"R", 1}}, {}).ok());  // Dup symbol.
  EXPECT_TRUE(MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}}).ok());
  EXPECT_EQ(MakeRelation(2, {{"a", "b"}}).size(), 1u);
}

}  // namespace
}  // namespace kbt
