/// \file
/// ModelMaterializer vs MaterializeModel: the delta-encoded materializer must
/// produce, for every assignment of the mentioned atoms, exactly the database
/// the specification-shaped rebuild produces. Property-tested over random
/// databases, sentences and assignments (including the all-default and
/// all-flipped corners and nullary relations).

#include <gtest/gtest.h>

#include <random>

#include "core/mu_internal.h"
#include "core/universe.h"
#include "logic/grounder.h"
#include "logic/parser.h"
#include "testutil.h"

namespace kbt::internal {
namespace {

using testutil::RandomDatabase;
using testutil::RandomSentenceGenerator;

/// Grounds `phi` against `db`'s update context and cross-checks the two
/// materializers over `trials` random assignments of the mentioned atoms.
void CrossCheck(const Formula& phi, const Database& db, std::mt19937_64* rng,
                int trials) {
  StatusOr<UpdateContext> ctx = MakeUpdateContext(phi, db);
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  StatusOr<Grounding> g = GroundSentence(phi, ctx->domain, GrounderOptions());
  ASSERT_TRUE(g.ok()) << g.status();
  std::vector<int> mentioned = g->circuit.CollectVars(g->root);

  StatusOr<ModelMaterializer> m = ModelMaterializer::Make(*ctx, g->atoms, mentioned);
  ASSERT_TRUE(m.ok()) << m.status();

  std::bernoulli_distribution coin(0.5);
  for (int t = 0; t < trials + 2; ++t) {
    std::vector<int8_t> assignment(g->atoms.size(), 0);
    if (t == 0) {
      // All false.
    } else if (t == 1) {
      for (int id : mentioned) assignment[static_cast<size_t>(id)] = 1;
    } else {
      for (int id : mentioned) {
        assignment[static_cast<size_t>(id)] = coin(*rng) ? 1 : 0;
      }
    }
    auto value = [&](int id) { return assignment[static_cast<size_t>(id)] != 0; };
    StatusOr<Database> expected =
        MaterializeModel(*ctx, g->atoms, mentioned, value);
    ASSERT_TRUE(expected.ok()) << expected.status();
    StatusOr<Database> got = m->Materialize(value);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*expected, *got) << "trial " << t;
  }
}

TEST(MaterializeTest, DeltaMatchesRebuildOnRandomInputs) {
  std::mt19937_64 rng(20260730);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.4);
  for (int iter = 0; iter < 30; ++iter) {
    Database db = RandomDatabase(&rng);
    Formula phi = gen.Generate(3);
    CrossCheck(phi, db, &rng, 6);
  }
}

TEST(MaterializeTest, DeltaMatchesRebuildWithNullaryAndNewRelations) {
  // Nullary relations take the one-possible-tuple fast path; new relations
  // start empty in the extended base, so every true atom is an add.
  std::mt19937_64 rng(7);
  Database db = *[] {
    Schema schema = *Schema::Of({{"Flag", 0}, {"R", 2}});
    Database d(schema);
    Relation::Builder r(2);
    r.Append({Name("a"), Name("b")});
    r.Append({Name("b"), Name("c")});
    return d.WithRelation("R", r.Build());
  }();
  Formula phi = *ParseSentence(
      "(Flag() -> N(a)) & (forall x, y: R(x, y) -> (N(x) | Flag()))");
  CrossCheck(phi, db, &rng, 10);
}

TEST(MaterializeTest, RebuildReusesOneMaterializerAcrossWorlds) {
  // The WorldScratch pattern: one ModelMaterializer object Rebuilt in place
  // for world after world (different databases, different groundings) must
  // behave exactly like a fresh Make per world — warm buffers, same results.
  std::mt19937_64 rng(20260731);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.4);
  std::bernoulli_distribution coin(0.5);
  ModelMaterializer pooled;
  for (int world = 0; world < 20; ++world) {
    Database db = RandomDatabase(&rng);
    Formula phi = gen.Generate(3);
    StatusOr<UpdateContext> ctx = MakeUpdateContext(phi, db);
    ASSERT_TRUE(ctx.ok()) << ctx.status();
    StatusOr<Grounding> g = GroundSentence(phi, ctx->domain, GrounderOptions());
    ASSERT_TRUE(g.ok()) << g.status();
    std::vector<int> mentioned = g->circuit.CollectVars(g->root);

    Status rebuilt = pooled.Rebuild(*ctx, g->atoms, mentioned);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt;
    StatusOr<ModelMaterializer> fresh =
        ModelMaterializer::Make(*ctx, g->atoms, mentioned);
    ASSERT_TRUE(fresh.ok()) << fresh.status();

    for (int t = 0; t < 4; ++t) {
      std::vector<int8_t> assignment(g->atoms.size(), 0);
      for (int id : mentioned) {
        assignment[static_cast<size_t>(id)] = coin(rng) ? 1 : 0;
      }
      auto value = [&](int id) {
        return assignment[static_cast<size_t>(id)] != 0;
      };
      StatusOr<Database> expected = fresh->Materialize(value);
      ASSERT_TRUE(expected.ok()) << expected.status();
      StatusOr<Database> got = pooled.Materialize(value);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*expected, *got) << "world " << world << " trial " << t;
    }
  }
}

TEST(MaterializeTest, AllDefaultAssignmentIsTheExtendedBase) {
  // When every mentioned atom keeps its base value, the delta is empty and the
  // result is ctx.extended_base itself.
  std::mt19937_64 rng(9);
  Database db = RandomDatabase(&rng);
  Formula phi = *ParseSentence("forall x: P(x) -> N(x)");
  StatusOr<UpdateContext> ctx = MakeUpdateContext(phi, db);
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  StatusOr<Grounding> g = GroundSentence(phi, ctx->domain, GrounderOptions());
  ASSERT_TRUE(g.ok()) << g.status();
  std::vector<int> mentioned = g->circuit.CollectVars(g->root);
  StatusOr<ModelMaterializer> m = ModelMaterializer::Make(*ctx, g->atoms, mentioned);
  ASSERT_TRUE(m.ok()) << m.status();

  auto base_value = [&](int id) {
    const GroundAtom& atom = g->atoms.AtomOf(id);
    const Relation* r = ctx->extended_base.FindRelation(atom.relation);
    return r != nullptr && r->Contains(atom.tuple);
  };
  StatusOr<Database> got = m->Materialize(base_value);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, ctx->extended_base);
}

}  // namespace
}  // namespace kbt::internal
