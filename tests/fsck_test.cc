/// \file
/// Offline integrity verification (store/fsck.h — the kbt_fsck tool's core)
/// over deliberately damaged stores. The split under test:
///
///   * errors   = recovery would lose acknowledged commits or fail (corrupt
///     NEWEST checkpoint, lsn mismatches, corrupt replmeta);
///   * warnings = damage recovery absorbs by design (torn WAL tail, an older
///     corrupt checkpoint shadowed by a newer good one, orphan WAL files);
///   * deep mode actually replays recovery and reports the landed lsn.

#include "store/fsck.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine.h"
#include "repl/meta.h"
#include "store/durable_engine.h"
#include "store/fault_env.h"
#include "store/wal.h"

namespace kbt::store {
namespace {

Knowledgebase InitialKb() {
  return *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
}

/// A store with two checkpoints (lsn 0 and 2, the older kept by a retention
/// pin) and a live WAL holding one more committed record (lsn 3).
void BuildStore(FaultInjectionEnv* env) {
  StoreOptions options;
  options.env = env;
  auto store = DurableEngine::Open("db", InitialKb(), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  (*store)->SetRetainLsnHook([] { return std::optional<uint64_t>(0); });
  ASSERT_TRUE((*store)->Apply("tau{P(b)}").ok());
  ASSERT_TRUE((*store)->Apply("tau{P(c)}").ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());  // checkpoint-2; wal-0 pinned.
  ASSERT_TRUE((*store)->Apply("tau{P(d)}").ok());
}

/// Flips one byte of `path` at `offset` (negative = from the end).
void CorruptByte(FaultInjectionEnv* env, const std::string& path,
                 int64_t offset) {
  auto bytes = env->ReadFile(path);
  ASSERT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
  size_t at = offset >= 0 ? size_t(offset) : bytes->size() + offset;
  ASSERT_LT(at, bytes->size());
  (*bytes)[at] ^= 0x40;
  auto file = env->NewTruncatedFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(*bytes).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

void AppendBytes(FaultInjectionEnv* env, const std::string& path,
                 const std::string& bytes) {
  auto file = env->NewAppendableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(bytes).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

TEST(FsckTest, CleanStoreDeepVerifies) {
  FaultInjectionEnv env;
  BuildStore(&env);
  FsckOptions options;
  options.deep = true;
  auto report = CheckStore(&env, "db", options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean());
  EXPECT_TRUE(report->warnings.empty());
  EXPECT_EQ(report->checkpoints_valid, 2u);
  EXPECT_EQ(report->best_checkpoint_lsn, 2u);
  EXPECT_EQ(report->wal_records, 3u);  // wal-0: lsn 1–2; wal-2: lsn 3.
  EXPECT_EQ(report->recovered_lsn, 3u);
  EXPECT_NE(FormatFsckReport(*report).find("clean"), std::string::npos);
}

TEST(FsckTest, CorruptNewestCheckpointIsAnError) {
  FaultInjectionEnv env;
  BuildStore(&env);
  CorruptByte(&env, "db/checkpoint-2", -1);
  auto report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  ASSERT_FALSE(report->errors.empty());
  EXPECT_NE(report->errors[0].find("newest checkpoint"), std::string::npos)
      << report->errors[0];
  EXPECT_NE(FormatFsckReport(*report).find("CORRUPT"), std::string::npos);
}

TEST(FsckTest, CorruptShadowedCheckpointIsOnlyAWarning) {
  FaultInjectionEnv env;
  BuildStore(&env);
  CorruptByte(&env, "db/checkpoint-0", -1);
  auto report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->errors[0];
  ASSERT_FALSE(report->warnings.empty());
  EXPECT_NE(report->warnings[0].find("shadowed"), std::string::npos)
      << report->warnings[0];
}

TEST(FsckTest, TornTailIsAWarningUnlessStrict) {
  FaultInjectionEnv env;
  BuildStore(&env);
  AppendBytes(&env, "db/wal-2", "\x07partial");  // A crash mid-append.

  auto report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  ASSERT_FALSE(report->warnings.empty());
  EXPECT_NE(report->warnings[0].find("torn tail"), std::string::npos);
  EXPECT_GT(report->torn_tail_bytes, 0u);

  // Deep mode still recovers to the full committed lsn past the torn tail.
  FsckOptions deep;
  deep.deep = true;
  auto deep_report = CheckStore(&env, "db", deep);
  ASSERT_TRUE(deep_report.ok());
  EXPECT_EQ(deep_report->recovered_lsn, 3u);

  // A cleanly-closed store should not have one: strict mode promotes it.
  FsckOptions strict;
  strict.strict_tail = true;
  auto strict_report = CheckStore(&env, "db", strict);
  ASSERT_TRUE(strict_report.ok());
  EXPECT_FALSE(strict_report->clean());
}

TEST(FsckTest, CorruptReplMetaIsAnError) {
  FaultInjectionEnv env;
  BuildStore(&env);
  repl::ReplMeta meta;
  meta.history = {{1, 0}, {2, 3}};
  ASSERT_TRUE(repl::WriteReplMeta(&env, "db", meta).ok());

  // Intact: reported, with the current epoch surfaced.
  auto report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_TRUE(report->has_repl_meta);
  EXPECT_EQ(report->repl_epoch, 2u);
  EXPECT_NE(FormatFsckReport(*report).find("epoch 2"), std::string::npos);

  // Corrupt: an error — a replica with an unreadable lineage cannot prove
  // its log is a prefix of anything.
  CorruptByte(&env, "db/replmeta", -1);
  report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST(FsckTest, OrphanWalIsAWarning) {
  FaultInjectionEnv env;
  BuildStore(&env);
  // A well-formed WAL hanging off a checkpoint that does not exist:
  // recovery can never reach its records.
  auto file = env.NewAppendableFile("db/wal-7");
  ASSERT_TRUE(file.ok());
  auto writer = WalWriter::Create(std::move(*file), 0, 7);
  ASSERT_TRUE(writer.ok());
  WalRecord record;
  record.payload = "tau{P(z)}";
  ASSERT_TRUE((*writer)->Append(record).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto report = CheckStore(&env, "db");
  ASSERT_TRUE(report.ok());
  bool flagged = false;
  for (const std::string& w : report->warnings) {
    flagged = flagged || w.find("unreachable") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST(FsckTest, NotAStoreFailsTheCallItself) {
  FaultInjectionEnv env;
  auto report = CheckStore(&env, "nowhere");
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace kbt::store
