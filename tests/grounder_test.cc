#include "logic/grounder.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace kbt {
namespace {

std::vector<Value> Domain(std::initializer_list<std::string_view> names) {
  std::vector<Value> out;
  for (auto n : names) out.push_back(Name(n));
  return out;
}

TEST(GrounderTest, GroundAtomBecomesVariable) {
  Grounding g = *GroundSentence(*ParseFormula("R(a, b)"), Domain({"a", "b"}));
  const Circuit::Node& n = g.circuit.node(g.root);
  EXPECT_EQ(n.kind, Circuit::NodeKind::kVar);
  EXPECT_EQ(g.atoms.AtomOf(n.var).ToString(), "R(a, b)");
}

TEST(GrounderTest, EqualityFoldsToConstants) {
  EXPECT_EQ(GroundSentence(*ParseFormula("a = a"), Domain({"a"}))->root, 1);
  EXPECT_EQ(GroundSentence(*ParseFormula("a = b"), Domain({"a", "b"}))->root, 0);
  EXPECT_EQ(GroundSentence(*ParseFormula("a != b"), Domain({"a", "b"}))->root, 1);
}

TEST(GrounderTest, ForallExpandsToConjunction) {
  Grounding g = *GroundSentence(*ParseFormula("forall x: R(x)"),
                                Domain({"a", "b", "c"}));
  const Circuit::Node& n = g.circuit.node(g.root);
  EXPECT_EQ(n.kind, Circuit::NodeKind::kAnd);
  EXPECT_EQ(n.children.size(), 3u);
  EXPECT_EQ(g.atoms.size(), 3u);
}

TEST(GrounderTest, ExistsExpandsToDisjunction) {
  Grounding g = *GroundSentence(*ParseFormula("exists x: R(x) & !(x = a)"),
                                Domain({"a", "b"}));
  // For x=a the conjunct folds to false, so only x=b survives.
  const Circuit::Node& n = g.circuit.node(g.root);
  EXPECT_EQ(n.kind, Circuit::NodeKind::kVar);
  EXPECT_EQ(g.atoms.AtomOf(n.var).ToString(), "R(b)");
}

TEST(GrounderTest, EmptyDomainQuantifiers) {
  EXPECT_EQ(GroundSentence(*ParseFormula("forall x: R(x)"), {})->root, 1);
  EXPECT_EQ(GroundSentence(*ParseFormula("exists x: R(x)"), {})->root, 0);
}

TEST(GrounderTest, SharedSubformulasAreShared) {
  // Iff grounds children once and reuses the literals.
  Grounding g = *GroundSentence(*ParseFormula("forall x: R(x) <-> S(x)"),
                                Domain({"a", "b"}));
  EXPECT_EQ(g.atoms.size(), 4u);  // R(a), R(b), S(a), S(b) — no duplicates.
}

TEST(GrounderTest, NestedQuantifiersScaleAsDomainPower) {
  Grounding g = *GroundSentence(*ParseFormula("forall x, y: Q(x, y)"),
                                Domain({"a", "b", "c"}));
  EXPECT_EQ(g.atoms.size(), 9u);
}

TEST(GrounderTest, ShadowedVariableUsesInnerBinding) {
  // ∀x (R(x) ∨ ∃x S(x)): inner x independent of outer.
  Grounding g = *GroundSentence(
      *ParseFormula("forall x: R(x) | (exists x: S(x))"), Domain({"a", "b"}));
  EXPECT_EQ(g.atoms.size(), 4u);
}

TEST(GrounderTest, NodeBudgetEnforced) {
  GrounderOptions opts;
  opts.max_nodes = 10;
  auto result = GroundSentence(
      *ParseFormula("forall x, y, z: Q(x, y) & Q(y, z) | Q(x, z) & Q(z, x)"),
      Domain({"a", "b", "c", "d"}), opts);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GrounderTest, FreeVariableRejected) {
  Formula open = Atom("R", {Term::Var("x")});
  auto result = GroundSentence(open, Domain({"a"}));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kbt
