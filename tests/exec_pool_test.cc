/// \file
/// Tests for the exec/ work-stealing thread pool: queue semantics, start/stop
/// drain guarantees, ParallelFor coverage under stress, and worker-id validity
/// (the contract the per-worker solver pools in τ rely on).

#include "exec/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task.h"

namespace kbt::exec {
namespace {

TEST(TaskQueueTest, OwnerPopsLifoThievesStealFifo) {
  TaskQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.PushBottom([&order, i](size_t) { order.push_back(i); });
  }
  EXPECT_EQ(q.size(), 3u);

  Task t;
  ASSERT_TRUE(q.StealTop(&t));
  t(0);  // Oldest task first for thieves.
  ASSERT_TRUE(q.PopBottom(&t));
  t(0);  // Newest task first for the owner.
  ASSERT_TRUE(q.PopBottom(&t));
  t(0);
  EXPECT_FALSE(q.PopBottom(&t));
  EXPECT_FALSE(q.StealTop(&t));
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(ThreadPoolTest, StartStopEmpty) {
  // Pools with no work must start and join cleanly, repeatedly.
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
  }
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  std::atomic<int> ran{0};
  pool.ParallelFor(5, [&](size_t, size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran](size_t) { ++ran; });
    }
    // Destructor must run every submitted task exactly once before joining.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i, size_t worker) {
    ASSERT_LT(worker, pool.workers());
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int ran = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.ParallelFor(1, [&](size_t i, size_t) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, ParallelForReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(64, [&](size_t i, size_t) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPoolTest, StealStressSkewedDurations) {
  // Chunks land in fixed queues; skewed task durations force idle workers to
  // steal. On a single-core host stealing still occurs via preemption, so only
  // coverage is asserted deterministically; steals() is exercised, not pinned.
  ThreadPool pool(4);
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<uint64_t> slow_done{0};
  pool.ParallelFor(kN, [&](size_t i, size_t) {
    if (i % 64 == 0) {
      // One slow item per chunk-group pins a worker.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++slow_done;
    }
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(slow_done.load(), 4u);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
  // Monotone counter is readable and sane.
  EXPECT_GE(pool.steals(), 0u);
}

TEST(ThreadPoolTest, ThrowingSubmittedTaskDoesNotKillWorkers) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([](size_t) { throw std::runtime_error("task boom"); });
      pool.Submit([&ran](size_t) { ++ran; });
    }
    // Workers survived the throwing tasks and keep servicing the queue.
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, ParallelForSurfacesBodyExceptionAsStatus) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(64);
  Status s = pool.ParallelFor(64, [&](size_t i, size_t) {
    if (i == 20) throw std::runtime_error("world 20 exploded");
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("world 20 exploded"), std::string::npos);
  // Only the throwing chunk's tail is lost; every other chunk ran whole, and
  // index 20 itself never completed.
  EXPECT_EQ(counts[20].load(), 0);
  int completed = 0;
  for (auto& c : counts) completed += c.load();
  // 12 chunks of ~6 indices each; only the throwing chunk can lose indices.
  EXPECT_GE(completed, 48);

  // The pool itself stays usable after the failure.
  std::atomic<int> ran{0};
  Status again = pool.ParallelFor(32, [&](size_t, size_t) { ++ran; });
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, SubmitAndParallelForInterleaved) {
  std::atomic<int> submitted_ran{0};
  {
    ThreadPool pool(2);
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 5; ++i) {
        pool.Submit([&submitted_ran](size_t) { ++submitted_ran; });
      }
      std::atomic<int> loop_ran{0};
      pool.ParallelFor(50, [&](size_t, size_t) { ++loop_ran; });
      EXPECT_EQ(loop_ran.load(), 50);
    }
  }
  // Every submitted task ran by the time the destructor joined.
  EXPECT_EQ(submitted_ran.load(), 50);
}

}  // namespace
}  // namespace kbt::exec
