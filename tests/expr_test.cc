#include "core/expr.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/expr_parser.h"
#include "core/tau.h"
#include "logic/parser.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::KbAsStrings;

TEST(ExprParserTest, ParsesAllStepKinds) {
  auto p = ParsePipeline("tau{ R(a) } >> glb >> lub >> pi[R, S]");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->steps().size(), 4u);
  EXPECT_EQ(p->steps()[0].kind, TransformStep::Kind::kTau);
  EXPECT_EQ(p->steps()[1].kind, TransformStep::Kind::kGlb);
  EXPECT_EQ(p->steps()[2].kind, TransformStep::Kind::kLub);
  EXPECT_EQ(p->steps()[3].kind, TransformStep::Kind::kProject);
  EXPECT_EQ(p->steps()[3].projection.size(), 2u);
}

TEST(ExprParserTest, Synonyms) {
  auto p = ParsePipeline("insert{ R(a) } >> meet >> join >> project[R]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps().size(), 4u);
}

TEST(ExprParserTest, Errors) {
  EXPECT_FALSE(ParsePipeline("").ok());
  EXPECT_FALSE(ParsePipeline("tau{ R(a) } glb").ok());       // Missing '>>'.
  EXPECT_FALSE(ParsePipeline("tau R(a)").ok());               // Missing braces.
  EXPECT_FALSE(ParsePipeline("tau{ R(a) ").ok());             // Unterminated.
  EXPECT_FALSE(ParsePipeline("warp{ R(a) }").ok());           // Unknown step.
  EXPECT_FALSE(ParsePipeline("pi[]").ok());                   // Empty projection.
  EXPECT_FALSE(ParsePipeline("tau{ R( }").ok());              // Bad formula inside.
}

TEST(ExprParserTest, RoundTripThroughToString) {
  Pipeline p = *ParsePipeline(
      "tau{ forall x: R(x) -> S(x) } >> glb >> pi[S]");
  Pipeline p2 = *ParsePipeline(p.ToString());
  EXPECT_EQ(p.ToString(), p2.ToString());
}

TEST(ExprTest, ApplyMatchesManualComposition) {
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  Formula phi = *ParseFormula("forall x: R(x) -> S(x)");
  Pipeline p;
  p.Tau(phi).Glb().Project({"S"});
  Knowledgebase via_pipeline = *p.Apply(kb);
  Knowledgebase manual = *(*Tau(phi, kb)).Glb().ProjectTo({Name("S")});
  EXPECT_EQ(KbAsStrings(via_pipeline), KbAsStrings(manual));
}

TEST(ExprTest, StepsApplyLeftToRight) {
  // τ first, then ⊓ — order matters (Lemma 2.1), so verify the pipeline's
  // application order explicitly on the paper's witness.
  Database d1 = *MakeDatabase({{"R1", 3}}, {{"R1", {{"a1", "a2", "a3"}}}});
  Database d2 = *MakeDatabase({{"R1", 3}}, {{"R1", {{"a1", "a2", "a4"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({d1, d2});
  Knowledgebase out = *(*ParsePipeline(
                            "tau{ forall x1, x2: R1(x1, a2, x2) -> R2(x1) } >> glb"))
                           .Apply(kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("R2"), MakeRelation(1, {{"a1"}}));
}

TEST(ExprTest, DeferredParseErrorSurfacesAtApply) {
  Pipeline p;
  p.Tau("not a formula ((");
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {});
  EXPECT_EQ(p.Apply(kb).status().code(), StatusCode::kParseError);
}

TEST(ExprTest, TraceRecordsSteps) {
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {});
  Pipeline p = *ParsePipeline("tau{ R(a) | R(b) } >> lub");
  PipelineStats stats;
  ASSERT_TRUE(p.Apply(kb, MuOptions(), &stats).ok());
  ASSERT_EQ(stats.steps.size(), 2u);
  EXPECT_EQ(stats.steps[0].input_databases, 1u);
  EXPECT_EQ(stats.steps[0].output_databases, 2u);
  EXPECT_EQ(stats.steps[1].output_databases, 1u);
}

TEST(ExprTest, CopyFormulaCopiesRelation) {
  Knowledgebase kb = *MakeSingletonKb({{"R", 2}}, {{"R", {{"a", "b"}, {"b", "c"}}}});
  Knowledgebase out = *Tau(CopyFormula("R", "R4", 2), kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("R4"),
            *out.databases()[0].RelationFor("R"));
}

TEST(ExprTest, DifferenceFormulaComputesSetDifference) {
  Knowledgebase kb = *MakeSingletonKb(
      {{"A", 1}, {"B", 1}}, {{"A", {{"x"}, {"y"}}}, {"B", {{"y"}}}});
  Knowledgebase out = *Tau(DifferenceFormula("A", "B", "D", 1), kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.databases()[0].RelationFor("D"), MakeRelation(1, {{"x"}}));
}

TEST(ExprTest, FilterKeepsSatisfyingWorlds) {
  // filter{} is the §6-style extension operator: hypothetical selection.
  Knowledgebase kb = *Knowledgebase::FromDatabases(
      {*MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}}),
       *MakeDatabase({{"P", 1}}, {{"P", {{"b"}}}}),
       *MakeDatabase({{"P", 1}}, {{"P", {{"a"}, {"b"}}}})});
  Pipeline p = *ParsePipeline("filter{ P(a) }");
  Knowledgebase out = *p.Apply(kb);
  EXPECT_EQ(out.size(), 2u);
  for (const Database& db : out) {
    EXPECT_TRUE(db.RelationFor("P")->Contains(Tuple{Name("a")}));
  }
  // Filtering everything out yields the empty kb but keeps the schema.
  Knowledgebase none = *(*ParsePipeline("filter{ P(zz) }")).Apply(kb);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.schema(), kb.schema());
}

TEST(ExprTest, FilterVsTauOnIndefiniteKb) {
  // filter is selection (drops worlds); tau is update (repairs worlds).
  Knowledgebase kb = *Knowledgebase::FromDatabases(
      {*MakeDatabase({{"P", 1}}, {{"P", {{"a"}}}}),
       *MakeDatabase({{"P", 1}}, {{"P", {{"b"}}}})});
  Knowledgebase filtered = *(*ParsePipeline("filter{ P(a) }")).Apply(kb);
  Knowledgebase updated = *(*ParsePipeline("tau{ P(a) }")).Apply(kb);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(updated.size(), 2u);
}

TEST(ExprTest, FilterRoundTripsThroughToString) {
  Pipeline p = *ParsePipeline("filter{ P(a) & !P(b) } >> glb");
  EXPECT_EQ((*ParsePipeline(p.ToString())).ToString(), p.ToString());
}

TEST(ExprTest, ProjectionOntoMissingRelationFails) {
  Knowledgebase kb = *MakeSingletonKb({{"R", 1}}, {});
  Pipeline p = *ParsePipeline("pi[Zed]");
  EXPECT_EQ(p.Apply(kb).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kbt
