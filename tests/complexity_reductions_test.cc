/// \file
/// Constructive reductions from §4 and §5, exercised end to end:
///
///  * Theorem 4.2 — 3CNF satisfiability as a fixed transformation π(τ(·)) over a
///    clause database. (We store clause literals in a bounded-arity table
///    Lit(clause, var, sign) instead of the paper's 7-ary clause relation, keeping
///    the grounding polynomial while preserving the construction: completeness of
///    the assignment is forced by the sentence, consistency by minimality, and the
///    zero-ary R3 flags violated clauses.)
///  * Theorem 4.9 — propositional satisfiability through a quantifier-free
///    transformation over zero-ary relations.
///  * Theorem 5.1 — an existential second-order query (2-colorability) in ST1 form
///    π ⊔ τ over the knowledgebase of all candidate colorings.

#include <gtest/gtest.h>

#include <random>

#include "core/kbt.h"
#include "sat/solver.h"
#include "testutil.h"

namespace kbt {
namespace {

struct Cnf3 {
  int num_vars;
  // Each clause: three (var, sign) literals, sign true = positive.
  std::vector<std::array<std::pair<int, bool>, 3>> clauses;
};

Cnf3 RandomCnf(int num_vars, int num_clauses, std::mt19937_64* rng) {
  Cnf3 out;
  out.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  for (int i = 0; i < num_clauses; ++i) {
    out.clauses.push_back({std::make_pair(var(*rng), sign(*rng)),
                           std::make_pair(var(*rng), sign(*rng)),
                           std::make_pair(var(*rng), sign(*rng))});
  }
  return out;
}

bool SolveDirectly(const Cnf3& cnf) {
  sat::Solver solver;
  std::vector<sat::Var> vars;
  for (int i = 0; i < cnf.num_vars; ++i) vars.push_back(solver.NewVar());
  for (const auto& clause : cnf.clauses) {
    std::vector<sat::Lit> lits;
    for (auto [v, positive] : clause) {
      lits.push_back(sat::MkLit(vars[static_cast<size_t>(v)], !positive));
    }
    solver.AddClause(lits);
  }
  return solver.Solve() == sat::SolveResult::kSat;
}

/// The Theorem 4.2 transformation. Data: Clause(c) plus LitOpp(c, v, t), where t
/// is the *opposite* of the literal's sign (pre-negated, which keeps the fixed
/// sentence at quantifier depth 3 instead of the paper's arity-7 clause table).
/// The sentence forces a complete assignment R2 and — exactly as in the paper's
/// ψ2, where a clause fires R3 only when ALL its literals carry the opposite
/// value — raises the zero-ary R3 on any falsified clause; consistency of R2 is
/// enforced by minimality. The 3CNF is satisfiable iff some world has R3 = ∅.
bool SolveViaTransformation(const Cnf3& cnf) {
  std::vector<Tuple> lit_tuples;
  std::vector<Tuple> clause_tuples;
  for (size_t c = 0; c < cnf.clauses.size(); ++c) {
    clause_tuples.push_back(Tuple{Name("c" + std::to_string(c))});
    for (auto [v, positive] : cnf.clauses[c]) {
      lit_tuples.push_back(Tuple{Name("c" + std::to_string(c)),
                                 Name("x" + std::to_string(v)),
                                 Name(positive ? "0" : "1")});
    }
  }
  Knowledgebase kb = Knowledgebase::Singleton(*Database::Create(
      *Schema::Of({{"Clause", 1}, {"LitOpp", 3}}),
      {Relation(1, std::move(clause_tuples)), Relation(3, std::move(lit_tuples))}));
  Engine engine;
  Knowledgebase out = *engine.Apply(
      "tau{ (forall c, v, t: LitOpp(c, v, t) -> R2(v, 0) | R2(v, 1)) & "
      "     (forall c: Clause(c) & "
      "        (forall v, t: LitOpp(c, v, t) -> R2(v, t)) -> R3()) } >> pi[R3]",
      kb);
  for (const Database& db : out) {
    if (db.RelationFor("R3")->empty()) return true;
  }
  return false;
}

class Theorem42ReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem42ReductionTest, TransformationDecides3Cnf) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 1299709 + 11);
  // Mix of under- and over-constrained instances around the phase transition.
  for (int m : {3, 6, 9, 13}) {
    Cnf3 cnf = RandomCnf(3, m, &rng);
    EXPECT_EQ(SolveViaTransformation(cnf), SolveDirectly(cnf))
        << "vars=3 clauses=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem42ReductionTest, ::testing::Range(0, 6));

TEST(Theorem42ReductionTest, UnsatCoreInstance) {
  // (x)(¬x) padded to 3 literals: unsatisfiable.
  Cnf3 cnf;
  cnf.num_vars = 1;
  cnf.clauses.push_back({std::make_pair(0, true), std::make_pair(0, true),
                         std::make_pair(0, true)});
  cnf.clauses.push_back({std::make_pair(0, false), std::make_pair(0, false),
                         std::make_pair(0, false)});
  EXPECT_FALSE(SolveDirectly(cnf));
  EXPECT_FALSE(SolveViaTransformation(cnf));
}

// ---------------------------------------------------------------------------
// Theorem 4.9: propositional formulas through zero-ary relations.
// ---------------------------------------------------------------------------

/// φ' is a propositional formula over zero-ary relations A(), B(), C(). The
/// quantifier-free transformation π_{R0} τ_{R0() → φ'} on the database with
/// R0 = {()} keeps R0 true iff φ' is satisfiable.
bool PropositionalSatViaTransformation(const Formula& prop) {
  Database db = *MakeDatabase({{"R0", 0}}, {});
  db = *db.WithRelation("R0", Relation(0).WithTuple(Tuple()));
  Knowledgebase kb = Knowledgebase::Singleton(db);
  Knowledgebase out = *(*Tau(Implies(Atom("R0", {}), prop), kb)).ProjectTo(
      {Name("R0")});
  for (const Database& result : out) {
    if (result.RelationFor("R0")->Contains(Tuple())) return true;
  }
  return false;
}

TEST(Theorem49ReductionTest, QuantifierFreeSatisfiability) {
  Formula a = Atom("A", {});
  Formula b = Atom("B", {});
  // Satisfiable: A ∧ ¬B.
  EXPECT_TRUE(PropositionalSatViaTransformation(And(a, Not(b))));
  // Unsatisfiable: A ∧ ¬A.
  EXPECT_FALSE(PropositionalSatViaTransformation(And(a, Not(a))));
  // Satisfiable: (A ∨ B) ∧ (¬A ∨ B) ∧ (A ∨ ¬B).
  EXPECT_TRUE(PropositionalSatViaTransformation(
      And({Or(a, b), Or(Not(a), b), Or(a, Not(b))})));
  // Unsatisfiable: all four sign combinations.
  EXPECT_FALSE(PropositionalSatViaTransformation(
      And({Or(a, b), Or(Not(a), b), Or(a, Not(b)), Or(Not(a), Not(b))})));
}

TEST(Theorem49ReductionTest, RandomPropositionalFormulasMatchSolver) {
  std::mt19937_64 rng(31415);
  std::vector<Formula> atoms = {Atom("A", {}), Atom("B", {}), Atom("C", {})};
  for (int trial = 0; trial < 15; ++trial) {
    // Random 2-3 clause CNF over three 0-ary atoms.
    std::uniform_int_distribution<int> pick(0, 2);
    std::bernoulli_distribution coin(0.5);
    std::vector<Formula> clauses;
    int m = 2 + (trial % 3);
    for (int i = 0; i < m; ++i) {
      Formula l1 = coin(rng) ? atoms[pick(rng)] : Not(atoms[pick(rng)]);
      Formula l2 = coin(rng) ? atoms[pick(rng)] : Not(atoms[pick(rng)]);
      clauses.push_back(Or(l1, l2));
    }
    Formula prop = And(clauses);
    // Brute-force reference over 8 assignments.
    bool expected = false;
    for (int mask = 0; mask < 8 && !expected; ++mask) {
      Database world = *MakeDatabase({{"A", 0}, {"B", 0}, {"C", 0}}, {});
      const char* names[] = {"A", "B", "C"};
      for (int i = 0; i < 3; ++i) {
        if ((mask >> i) & 1) {
          world = *world.WithRelation(names[i], Relation(0).WithTuple(Tuple()));
        }
      }
      expected |= *Satisfies(world, prop);
    }
    EXPECT_EQ(PropositionalSatViaTransformation(prop), expected);
  }
}

// ---------------------------------------------------------------------------
// Theorem 5.1: SF ⊆ ST1 — an ∃SO query as π ⊔ τ over candidate extensions.
// ---------------------------------------------------------------------------

/// All extensions of `db` by every possible unary relation `name` over its
/// active domain: the knowledgebase the Theorem 5.1 construction posits.
Knowledgebase AllUnaryExtensions(const Database& db, std::string_view name) {
  std::vector<Value> domain = db.ActiveDomain();
  Schema extended = *db.schema().Union(*Schema::Of({{name, 1}}));
  std::vector<Database> worlds;
  for (uint64_t mask = 0; mask < (uint64_t{1} << domain.size()); ++mask) {
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < domain.size(); ++i) {
      if ((mask >> i) & 1) tuples.push_back(Tuple{domain[i]});
    }
    Database world = *db.ExtendTo(extended);
    world = *world.WithRelation(Name(name), Relation(1, std::move(tuples)));
    worlds.push_back(std::move(world));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// ∃S ∀x∀y (E(x,y) → ¬(S(x) ↔ S(y))): the graph is 2-colorable (bipartite).
bool BipartiteViaSecondOrderTransformation(const testutil::Graph& g) {
  Database db = *Database::Create(*Schema::Of({{"E", 2}}),
                                  {testutil::EdgeRelation(g)});
  if (db.ActiveDomain().empty()) return true;  // Edgeless graph.
  Knowledgebase kb = AllUnaryExtensions(db, "S");
  Engine engine;
  Knowledgebase out = *engine.Apply(
      "tau{ (forall x, y: E(x, y) -> !(S(x) <-> S(y))) -> Ans() } "
      ">> lub >> pi[Ans]",
      kb);
  EXPECT_EQ(out.size(), 1u) << "⊔ must produce a singleton";
  if (out.empty()) return false;
  return out.databases()[0].RelationFor("Ans")->Contains(Tuple());
}

/// Reference bipartiteness by BFS 2-coloring.
bool BipartiteReference(const testutil::Graph& g) {
  std::vector<int> color(static_cast<size_t>(g.n), -1);
  for (int start = 0; start < g.n; ++start) {
    if (color[static_cast<size_t>(start)] != -1) continue;
    color[static_cast<size_t>(start)] = 0;
    std::vector<int> queue{start};
    while (!queue.empty()) {
      int u = queue.back();
      queue.pop_back();
      for (auto [a, b] : g.edges) {
        int v = -1;
        if (a == u) v = b;
        if (b == u) v = a;
        if (v < 0) continue;
        if (color[static_cast<size_t>(v)] == -1) {
          color[static_cast<size_t>(v)] = 1 - color[static_cast<size_t>(u)];
          queue.push_back(v);
        } else if (color[static_cast<size_t>(v)] ==
                   color[static_cast<size_t>(u)]) {
          return false;
        }
      }
    }
  }
  return true;
}

class Theorem51Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem51Test, ExistentialSecondOrderQueryViaSt1) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 15485863 + 2);
  testutil::Graph g;
  g.n = 4;
  std::bernoulli_distribution coin(0.4);
  for (int i = 0; i < g.n; ++i) {
    for (int j = i + 1; j < g.n; ++j) {
      if (coin(rng)) {
        g.edges.insert({i, j});
        g.edges.insert({j, i});
      }
    }
  }
  if (g.edges.empty()) return;
  EXPECT_EQ(BipartiteViaSecondOrderTransformation(g), BipartiteReference(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem51Test, ::testing::Range(0, 10));

TEST(Theorem51Test, OddAndEvenCycles) {
  testutil::Graph c4, c5;
  c4.n = 4;
  c5.n = 5;
  for (int i = 0; i < 4; ++i) {
    c4.edges.insert({i, (i + 1) % 4});
    c4.edges.insert({(i + 1) % 4, i});
  }
  for (int i = 0; i < 5; ++i) {
    c5.edges.insert({i, (i + 1) % 5});
    c5.edges.insert({(i + 1) % 5, i});
  }
  EXPECT_TRUE(BipartiteViaSecondOrderTransformation(c4));
  EXPECT_FALSE(BipartiteViaSecondOrderTransformation(c5));
}

}  // namespace
}  // namespace kbt
