/// \file
/// Randomized end-to-end exercise of the transformation language: random
/// pipelines (τ / ⊓ / ⊔ / π / filter in random order) applied to random
/// knowledgebases. The checks are structural invariants that must hold for every
/// legal expression, whatever it computes:
///
///   * evaluation never crashes and only fails with documented Status codes;
///   * the result is canonical (sorted, deduplicated, one schema);
///   * ⊓/⊔ steps yield singletons; π yields exactly the projected schema;
///   * τ results satisfy the inserted sentence (KM postulate (i)) — checked via
///     the pipeline trace sizes and a final re-insertion being a no-op
///     (postulate (ii): anything τ_φ produced already satisfies φ).

#include <gtest/gtest.h>

#include <random>

#include "core/kbt.h"
#include "testutil.h"

namespace kbt {
namespace {

class PipelineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzzTest, RandomPipelinesKeepInvariants) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 41);
  testutil::RandomSentenceGenerator gen(&rng, 0.1);
  std::uniform_int_distribution<int> step_count(1, 4);
  std::uniform_int_distribution<int> step_kind(0, 4);

  for (int trial = 0; trial < 6; ++trial) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    Pipeline pipeline;
    Formula last_insert = nullptr;
    int steps = step_count(rng);
    for (int i = 0; i < steps; ++i) {
      switch (step_kind(rng)) {
        case 0:
          last_insert = gen.Generate(2);
          pipeline.Tau(last_insert);
          break;
        case 1:
          pipeline.Glb();
          break;
        case 2:
          pipeline.Lub();
          break;
        case 3:
          pipeline.Project({"Dom", "P", "Q"});
          break;
        default:
          pipeline.Filter(gen.Generate(2));
          break;
      }
    }
    PipelineStats stats;
    StatusOr<Knowledgebase> result = pipeline.Apply(kb, MuOptions(), &stats);
    if (!result.ok()) {
      // Projection after a schema-extending τ may drop relations a later filter
      // needs, etc. — all legal failure modes carry documented codes.
      EXPECT_TRUE(result.status().code() == StatusCode::kNotFound ||
                  result.status().code() == StatusCode::kInvalidArgument ||
                  result.status().code() == StatusCode::kResourceExhausted)
          << result.status() << " for " << pipeline.ToString();
      continue;
    }
    // Canonical form: sorted unique members, single schema.
    const std::vector<Database>& dbs = result->databases();
    for (size_t i = 0; i + 1 < dbs.size(); ++i) {
      EXPECT_TRUE(dbs[i] < dbs[i + 1]) << pipeline.ToString();
    }
    for (const Database& db : *result) {
      EXPECT_EQ(db.schema(), result->schema());
    }
    // Trace covers every step with consistent sizes.
    ASSERT_EQ(stats.steps.size(), static_cast<size_t>(steps));
    EXPECT_EQ(stats.steps.front().input_databases, kb.size());
    EXPECT_EQ(stats.steps.back().output_databases, result->size());
    for (size_t i = 0; i + 1 < stats.steps.size(); ++i) {
      EXPECT_EQ(stats.steps[i].output_databases,
                stats.steps[i + 1].input_databases);
    }
    // Postulate (ii) end-to-end: re-inserting the last τ sentence into its own
    // output is a no-op (every produced world already satisfies it) — only
    // checked when the last step was that τ.
    if (last_insert != nullptr && !result->empty() &&
        pipeline.steps().back().kind == TransformStep::Kind::kTau) {
      StatusOr<Knowledgebase> again = Tau(last_insert, *result);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(testutil::KbAsStrings(*again), testutil::KbAsStrings(*result))
          << pipeline.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest, ::testing::Range(0, 15));

class TrailReusePipelineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TrailReusePipelineFuzzTest, ReuseOnAndOffProduceIdenticalResults) {
  // Assumption-trail reuse changes *how* the SAT descent searches (retained
  // levels, deferred guard retirement, reordered assumptions) but never *what*
  // μ computes: on randomized pipelines the reuse-on and reuse-off runs must
  // produce the identical canonical knowledgebase — same minimal-model set,
  // same final databases — or fail identically.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7477 + 5);
  testutil::RandomSentenceGenerator gen(&rng, 0.15);
  std::uniform_int_distribution<int> step_count(1, 3);
  std::uniform_int_distribution<int> step_kind(0, 2);

  for (int trial = 0; trial < 4; ++trial) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    Pipeline pipeline;
    int steps = step_count(rng);
    for (int i = 0; i < steps; ++i) {
      switch (step_kind(rng)) {
        case 0:
          pipeline.Tau(gen.Generate(2));
          break;
        case 1:
          pipeline.Filter(gen.Generate(2));
          break;
        default:
          pipeline.Lub();
          break;
      }
    }
    MuOptions with_reuse;
    with_reuse.reuse_assumption_trail = true;
    MuOptions without_reuse;
    without_reuse.reuse_assumption_trail = false;
    StatusOr<Knowledgebase> on = pipeline.Apply(kb, with_reuse);
    StatusOr<Knowledgebase> off = pipeline.Apply(kb, without_reuse);
    ASSERT_EQ(on.ok(), off.ok()) << pipeline.ToString();
    if (!on.ok()) {
      EXPECT_EQ(on.status().code(), off.status().code()) << pipeline.ToString();
      continue;
    }
    EXPECT_EQ(testutil::KbAsStrings(*on), testutil::KbAsStrings(*off))
        << pipeline.ToString();
  }

  // The same property with the SAT strategy forced, so the descent engine is
  // exercised even where the auto dispatcher would pick a fast path.
  for (int trial = 0; trial < 4; ++trial) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    Formula phi = gen.Generate(2);
    TauOptions on_options;
    on_options.mu.strategy = MuStrategy::kSat;
    on_options.mu.reuse_assumption_trail = true;
    TauOptions off_options = on_options;
    off_options.mu.reuse_assumption_trail = false;
    StatusOr<Knowledgebase> on = Tau(phi, kb, on_options);
    StatusOr<Knowledgebase> off = Tau(phi, kb, off_options);
    ASSERT_EQ(on.ok(), off.ok());
    if (on.ok()) {
      EXPECT_EQ(testutil::KbAsStrings(*on), testutil::KbAsStrings(*off));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrailReusePipelineFuzzTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace kbt
