/// \file
/// Tests for the semantic WAL codec: record round trips, the torn-tail
/// contract (a crash mid-append is detected and logically truncated, never an
/// error), corruption stopping the scan at the last whole record, and the
/// bounds-checked tuple-delta payload codec under truncation and garbage.

#include "store/wal.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "store/fault_env.h"

namespace kbt::store {
namespace {

/// Writes a WAL with `records` into the fault env (no faults armed) and
/// returns the resulting file image.
std::string BuildWal(const std::vector<WalRecord>& records, uint64_t start_lsn) {
  FaultInjectionEnv env;
  auto file = env.NewAppendableFile("wal");
  EXPECT_TRUE(file.ok());
  auto writer = WalWriter::Create(std::move(*file), 0, start_lsn);
  EXPECT_TRUE(writer.ok());
  for (const WalRecord& r : records) {
    EXPECT_TRUE((*writer)->Append(r).ok());
  }
  EXPECT_TRUE((*writer)->Sync().ok());
  EXPECT_TRUE((*writer)->Close().ok());
  auto image = env.ReadFile("wal");
  EXPECT_TRUE(image.ok());
  return *image;
}

std::vector<WalRecord> SampleRecords() {
  return {
      {WalRecordKind::kTransform, "tau{forall x: P(x) -> Q(x, x)} >> glb"},
      {WalRecordKind::kInsert,
       EncodeTupleDelta("Q", 2, {{"a", "b"}, {"b", "c"}})},
      {WalRecordKind::kDelete, EncodeTupleDelta("P", 1, {{"a"}})},
      {WalRecordKind::kTransform, ""},  // Empty payload is legal at this layer.
  };
}

TEST(WalTest, EmptyWalIsJustTheHeader) {
  std::string image = BuildWal({}, 42);
  EXPECT_EQ(image.size(), kWalHeaderSize);
  auto contents = ReadWal(image);
  ASSERT_TRUE(contents.ok()) << contents.status().message();
  EXPECT_EQ(contents->start_lsn, 42u);
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->valid_bytes, kWalHeaderSize);
}

TEST(WalTest, RecordsRoundTrip) {
  std::vector<WalRecord> records = SampleRecords();
  std::string image = BuildWal(records, 7);
  auto contents = ReadWal(image);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->start_lsn, 7u);
  EXPECT_EQ(contents->records, records);
  EXPECT_EQ(contents->valid_bytes, image.size());
}

TEST(WalTest, ReopenForAppendDoesNotRewriteHeader) {
  std::vector<WalRecord> records = SampleRecords();
  FaultInjectionEnv env;
  {
    auto file = env.NewAppendableFile("wal");
    ASSERT_TRUE(file.ok());
    auto writer = WalWriter::Create(std::move(*file), 0, 3);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(records[0]).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto first = env.ReadFile("wal");
  ASSERT_TRUE(first.ok());
  {
    auto file = env.NewAppendableFile("wal");
    ASSERT_TRUE(file.ok());
    auto writer = WalWriter::Create(std::move(*file), first->size(), 3);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 1; i < records.size(); ++i) {
      ASSERT_TRUE((*writer)->Append(records[i]).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto image = env.ReadFile("wal");
  ASSERT_TRUE(image.ok());
  auto contents = ReadWal(*image);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->start_lsn, 3u);
  EXPECT_EQ(contents->records, records);
}

TEST(WalTest, TornTailAtEveryByteBoundaryIsTruncatedNotFatal) {
  std::vector<WalRecord> records = SampleRecords();
  std::string image = BuildWal(records, 0);
  // Whole-record prefix sizes, so each cut maps to an expected record count.
  std::vector<size_t> prefix_sizes = {kWalHeaderSize};
  size_t at = kWalHeaderSize;
  for (const WalRecord& r : records) {
    at += kWalRecordHeadSize + r.payload.size();
    prefix_sizes.push_back(at);
  }
  ASSERT_EQ(at, image.size());

  for (size_t cut = kWalHeaderSize; cut <= image.size(); ++cut) {
    auto contents = ReadWal(std::string_view(image).substr(0, cut));
    ASSERT_TRUE(contents.ok()) << "cut at " << cut;
    // The valid prefix is the largest whole-record boundary at or below cut.
    size_t expect_records = 0;
    size_t expect_bytes = kWalHeaderSize;
    for (size_t i = 1; i < prefix_sizes.size(); ++i) {
      if (prefix_sizes[i] <= cut) {
        expect_records = i;
        expect_bytes = prefix_sizes[i];
      }
    }
    EXPECT_EQ(contents->records.size(), expect_records) << "cut at " << cut;
    EXPECT_EQ(contents->valid_bytes, expect_bytes) << "cut at " << cut;
    for (size_t i = 0; i < contents->records.size(); ++i) {
      EXPECT_EQ(contents->records[i], records[i]);
    }
  }
}

TEST(WalTest, CorruptMiddleRecordStopsTheScanThere) {
  std::vector<WalRecord> records = SampleRecords();
  std::string image = BuildWal(records, 0);
  // Flip a byte inside the second record's payload.
  size_t rec1 = kWalHeaderSize + kWalRecordHeadSize + records[0].payload.size();
  size_t target = rec1 + kWalRecordHeadSize + 2;
  image[target] = static_cast<char>(image[target] ^ 0x40);
  auto contents = ReadWal(image);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], records[0]);
  EXPECT_EQ(contents->valid_bytes, rec1);
}

TEST(WalTest, BadHeaderIsDataLoss) {
  std::string image = BuildWal(SampleRecords(), 0);
  {
    std::string bad = image;
    bad[0] = 'X';  // Magic.
    auto contents = ReadWal(bad);
    ASSERT_FALSE(contents.ok());
    EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  }
  {
    std::string bad = image;
    bad[6] = static_cast<char>(0xFF);  // Version.
    auto contents = ReadWal(bad);
    ASSERT_FALSE(contents.ok());
    EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  }
  {
    // A header cut short is unreadable at this layer (recovery treats a
    // shorter-than-header file as "no record ever committed" before calling).
    auto contents = ReadWal(std::string_view(image).substr(0, 5));
    ASSERT_FALSE(contents.ok());
    EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WalTest, ByteFlipFuzzNeverCrashesAndNeverInventsRecords) {
  std::vector<WalRecord> records = SampleRecords();
  std::string image = BuildWal(records, 5);
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<size_t> pos(0, image.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutant = image;
    mutant[pos(rng)] ^= static_cast<char>(1 << bit(rng));
    auto contents = ReadWal(mutant);
    if (!contents.ok()) continue;  // Header flips: clean error.
    // A flip can only shorten the accepted prefix (CRC catches the body) —
    // never yield more records than were written or overrun the image.
    EXPECT_LE(contents->records.size(), records.size());
    EXPECT_LE(contents->valid_bytes, mutant.size());
  }
}

TEST(WalTest, RandomGarbageFailsCleanly) {
  std::mt19937_64 rng(123);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 200; ++trial) {
    std::uniform_int_distribution<size_t> len(0, 256);
    std::string garbage(len(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte(rng));
    auto contents = ReadWal(garbage);  // Must not crash; outcome is free.
    if (contents.ok()) {
      EXPECT_LE(contents->valid_bytes, garbage.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Tuple-delta payload codec.
// ---------------------------------------------------------------------------

TEST(TupleDeltaTest, RoundTrips) {
  struct Case {
    std::string relation;
    size_t arity;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<Case> cases = {
      {"Q", 2, {{"a", "b"}, {"long name with spaces", "naïve-ütf8"}}},
      {"P", 1, {}},
      {"Marker", 0, {{}}},  // Zero-ary relation holding the empty tuple.
      {"R", 3, {{"", "x", std::string("nul\0byte", 8)}}},
  };
  for (const Case& c : cases) {
    std::string payload = EncodeTupleDelta(c.relation, c.arity, c.rows);
    auto delta = DecodeTupleDelta(payload);
    ASSERT_TRUE(delta.ok()) << delta.status().message();
    EXPECT_EQ(delta->relation, c.relation);
    EXPECT_EQ(delta->arity, c.arity);
    EXPECT_EQ(delta->rows, c.rows);
  }
}

TEST(TupleDeltaTest, TruncationAtEveryBoundaryFailsCleanly) {
  std::string payload =
      EncodeTupleDelta("Q", 2, {{"alpha", "beta"}, {"gamma", "delta"}});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto delta = DecodeTupleDelta(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(delta.ok()) << "cut at " << cut;
  }
  // Trailing garbage is rejected too: a payload is exactly one delta.
  auto delta = DecodeTupleDelta(payload + "x");
  EXPECT_FALSE(delta.ok());
}

TEST(TupleDeltaTest, HugeCountsRejectedBeforeAllocation) {
  // name_len = 4 "Huge", arity = 0xFFFFFFFF: must fail fast, not allocate.
  std::string payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
  };
  put_u32(4);
  payload += "Huge";
  put_u32(0xFFFFFFFFu);  // arity
  put_u32(0xFFFFFFFFu);  // rows
  auto delta = DecodeTupleDelta(payload);
  EXPECT_FALSE(delta.ok());
}

TEST(TupleDeltaTest, ZeroAryHugeRowCountRejectedBeforeAllocation) {
  // arity = 0 sidesteps the rows*arity bound, so the zero-ary rule (at most
  // the empty tuple) must reject the count before the reserve.
  std::string payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
  };
  put_u32(6);
  payload += "Marker";
  put_u32(0);            // arity
  put_u32(0xFFFFFFFFu);  // rows
  auto delta = DecodeTupleDelta(payload);
  EXPECT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kDataLoss);
}

TEST(TupleDeltaTest, ZeroAryDuplicateRowsCanonicalizeToOne) {
  // Duplicate empty tuples carry no information; the encoder drops them so
  // every encodable delta stays decodable under the zero-ary bound.
  std::string payload = EncodeTupleDelta("Marker", 0, {{}, {}, {}});
  auto delta = DecodeTupleDelta(payload);
  ASSERT_TRUE(delta.ok()) << delta.status().message();
  EXPECT_EQ(delta->rows, (std::vector<std::vector<std::string>>{{}}));
}

TEST(TupleDeltaTest, GarbageFuzzNeverCrashes) {
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 500; ++trial) {
    std::uniform_int_distribution<size_t> len(0, 128);
    std::string garbage(len(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte(rng));
    auto delta = DecodeTupleDelta(garbage);
    (void)delta;  // Either outcome, as long as it returns.
  }
}

}  // namespace
}  // namespace kbt::store
