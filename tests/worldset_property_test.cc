/// \file
/// The observational-identity contract of delta-structured world-sets: a
/// knowledgebase built as overlays over a shared base (FromBaseAndOverlays) is
/// indistinguishable — equality, flat member sequence, printing, lattice ops,
/// membership, projection/extension, and μ/τ results — from the same world set
/// built flat (FromDatabases), over randomized delta workloads. Plus the store
/// side: version-2 base+overlay checkpoints round-trip bit-identically, still
/// decode legacy version-1 images, and reject non-canonical overlay payloads
/// even when the CRC is intact.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/kbt.h"
#include "rel/binary_io.h"
#include "store/checkpoint.h"
#include "store/crc32.h"
#include "store/fault_env.h"
#include "store/recovery.h"
#include "store/wal.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::RandomDatabase;
using testutil::RandomKnowledgebase;
using testutil::RandomSentenceGenerator;

/// Random worlds that are genuine deltas of one another: start from a seed
/// world and apply a few random symmetric-difference edits per sibling, so
/// overlays stay sparse the way τ results are.
std::vector<Database> RandomDeltaWorkload(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> world_count(2, 8);
  std::uniform_int_distribution<int> edit_count(0, 3);
  Database seed = RandomDatabase(rng);
  std::vector<Database> worlds;
  int k = world_count(*rng);
  for (int w = 0; w < k; ++w) {
    Database world = seed;
    int edits = edit_count(*rng);
    for (int e = 0; e < edits; ++e) {
      Database other = RandomDatabase(rng);
      std::uniform_int_distribution<size_t> pick(0, world.schema().size() - 1);
      size_t pos = pick(*rng);
      world.ReplaceRelation(
          pos, world.relation_at(pos).SymmetricDifference(
                   other.relation_at(pos)));
    }
    worlds.push_back(std::move(world));
  }
  return worlds;
}

/// The same world set built the two ways under test.
struct TwoConstructions {
  Knowledgebase flat;
  Knowledgebase overlayed;
};

TwoConstructions BuildBothWays(std::vector<Database> worlds,
                               std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> pick(0, worlds.size() - 1);
  // Any member may anchor the overlays, not just the one FromDatabases picks.
  auto base = std::make_shared<const Database>(worlds[pick(*rng)]);
  std::vector<WorldOverlay> overlays;
  overlays.reserve(worlds.size());
  for (const Database& w : worlds) {
    overlays.push_back(WorldOverlay::FromDiff(*base, w));
  }
  TwoConstructions out;
  out.flat = *Knowledgebase::FromDatabases(std::move(worlds));
  out.overlayed =
      *Knowledgebase::FromBaseAndOverlays(std::move(base), std::move(overlays));
  return out;
}

TEST(WorldsetPropertyTest, OverlayBackedIsObservationallyFlat) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 60; ++trial) {
    TwoConstructions kbs = BuildBothWays(RandomDeltaWorkload(&rng), &rng);
    const Knowledgebase& a = kbs.flat;
    const Knowledgebase& b = kbs.overlayed;

    ASSERT_EQ(a, b) << "trial " << trial;
    ASSERT_EQ(a.size(), b.size());
    // Identical canonical member sequence, world by world, plus the flat view.
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.World(i), b.World(i)) << "trial " << trial << " world " << i;
    }
    ASSERT_EQ(a.databases(), b.databases());
    ASSERT_EQ(a.ToString(), b.ToString());
    ASSERT_EQ(a.Glb(), b.Glb());
    ASSERT_EQ(a.Lub(), b.Lub());
    // Membership agrees on members and on fresh random probes.
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(b.Contains(a.World(i)));
    }
    Database probe = RandomDatabase(&rng);
    ASSERT_EQ(a.Contains(probe), b.Contains(probe));
    // Subsetting, projection and extension preserve the identity.
    std::vector<size_t> evens;
    for (size_t i = 0; i < a.size(); i += 2) evens.push_back(i);
    ASSERT_EQ(a.SelectWorlds(evens), b.SelectWorlds(evens));
    std::vector<Symbol> proj = {Name("Dom"), Name("P")};
    ASSERT_EQ(*a.ProjectTo(proj), *b.ProjectTo(proj));
    Schema super = *a.schema().Union(*Schema::Of({{"Extra", 2}}));
    ASSERT_EQ(*a.ExtendTo(super), *b.ExtendTo(super));
  }
}

TEST(WorldsetPropertyTest, TransformsAgreeAcrossConstructions) {
  std::mt19937_64 rng(424242);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.35);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    TwoConstructions kbs = BuildBothWays(RandomDeltaWorkload(&rng), &rng);
    Formula phi = gen.Generate(2);

    // Satisfaction reads worlds through the overlays; it must not notice.
    StatusOr<bool> sat_flat = KbSatisfies(kbs.flat, phi);
    StatusOr<bool> sat_overlay = KbSatisfies(kbs.overlayed, phi);
    ASSERT_EQ(sat_flat.ok(), sat_overlay.ok());
    if (sat_flat.ok()) ASSERT_EQ(*sat_flat, *sat_overlay);

    // τ across strategies (auto dispatch and forced SAT), sequential and
    // 4-way parallel: equal inputs give equal canonical outputs.
    for (MuStrategy strategy : {MuStrategy::kAuto, MuStrategy::kSat}) {
      for (size_t threads : {1u, 4u}) {
        TauOptions options;
        options.mu.strategy = strategy;
        options.threads = threads;
        StatusOr<Knowledgebase> from_flat = Tau(phi, kbs.flat, options);
        StatusOr<Knowledgebase> from_overlay = Tau(phi, kbs.overlayed, options);
        ASSERT_EQ(from_flat.ok(), from_overlay.ok()) << "trial " << trial;
        if (!from_flat.ok()) continue;
        ASSERT_EQ(*from_flat, *from_overlay)
            << "trial " << trial << " strategy "
            << static_cast<int>(strategy) << " threads " << threads;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(WorldsetPropertyTest, MuAgreesOnSingletonConstructions) {
  // μ on a world reached through an overlay vs the same world flat.
  std::mt19937_64 rng(777);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.4);
  for (int trial = 0; trial < 20; ++trial) {
    Database base = RandomDatabase(&rng);
    Database edited = RandomDatabase(&rng);
    WorldOverlay overlay = WorldOverlay::FromDiff(base, edited);
    Database via_overlay = overlay.ApplyTo(base);
    ASSERT_EQ(via_overlay, edited);
    Formula phi = gen.Generate(2);
    StatusOr<Knowledgebase> a = Mu(phi, edited);
    StatusOr<Knowledgebase> b = Mu(phi, via_overlay);
    ASSERT_EQ(a.ok(), b.ok()) << "trial " << trial;
    if (a.ok()) ASSERT_EQ(*a, *b) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Store: version-2 checkpoints and legacy decode.

/// A checkpoint image with an arbitrary version byte and payload (the CRC is
/// computed honestly, so only the payload semantics are under test).
std::string MakeImage(uint8_t version, uint64_t lsn, const std::string& payload) {
  auto put_u32 = [](std::string& out, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  std::string out(store::kCheckpointMagic, sizeof(store::kCheckpointMagic));
  out.push_back(static_cast<char>(version));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((lsn >> (8 * i)) & 0xff));
  }
  put_u32(out, store::Crc32c(payload));
  put_u32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

TEST(WorldsetPropertyTest, CheckpointRoundTripIsBitIdentical) {
  std::mt19937_64 rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    TwoConstructions kbs = BuildBothWays(RandomDeltaWorkload(&rng), &rng);
    std::string image = store::EncodeCheckpoint(kbs.overlayed, trial);
    auto decoded = store::DecodeCheckpoint(image);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    ASSERT_EQ(decoded->kb, kbs.flat);
    // The decoded kb serializes to the same flat bytes as the flat build —
    // the bit-identity the crash-recovery matrix compares.
    ASSERT_EQ(SerializeKnowledgebase(decoded->kb),
              SerializeKnowledgebase(kbs.flat));
    // And re-encoding reproduces the checkpoint image byte for byte.
    ASSERT_EQ(store::EncodeCheckpoint(decoded->kb, trial), image);
  }
}

TEST(WorldsetPropertyTest, LegacyVersion1CheckpointsStillDecode) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Knowledgebase kb = RandomKnowledgebase(&rng);
    std::string image = MakeImage(1, 7, SerializeKnowledgebase(kb));
    auto decoded = store::DecodeCheckpoint(image);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->lsn, 7u);
    EXPECT_EQ(decoded->kb, kb);
  }
}

TEST(WorldsetPropertyTest, RejectsNonCanonicalOverlayPayload) {
  // A syntactically well-formed v2 payload whose overlay breaks the canonical
  // invariant (adds overlapping the base) must be kDataLoss even though the
  // CRC is valid — WorldOverlay::Validate gates acceptance.
  Schema schema = *Schema::Of({{"P", 1}});
  Database base(schema);
  base.ReplaceRelation(0, MakeRelation(1, {{"a"}}));

  auto put_u32 = [](std::string& out, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  auto put_block = [&put_u32](std::string& out, const std::string& block) {
    put_u32(out, static_cast<uint32_t>(block.size()));
    out += block;
  };
  std::string payload;
  put_u32(payload, 1);  // One world.
  put_block(payload, SerializeDatabase(base));
  put_u32(payload, 1);  // One delta.
  // adds = {a} which is already in the base: invariant violation.
  put_block(payload, store::EncodeTupleDelta("P", 1, {{"a"}}));
  put_block(payload, store::EncodeTupleDelta("P", 1, {}));

  auto decoded = store::DecodeCheckpoint(
      MakeImage(store::kCheckpointVersion, 3, payload));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WorldsetPropertyTest, RecoveryReadsLegacyStoreAndRewritesOverlayed) {
  // A store directory written before the overlay representation (v1
  // checkpoint + a tuple-delta WAL suffix) recovers to the same state the
  // fault matrix expects, and a fresh checkpoint of the recovered kb is a
  // version-2 image that round-trips to the identical serialized value.
  std::mt19937_64 rng(31337);
  Knowledgebase kb = RandomKnowledgebase(&rng);

  store::FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("store").ok());
  {
    auto file = env.NewTruncatedFile("store/checkpoint-4");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(MakeImage(1, 4, SerializeKnowledgebase(kb))).ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env.NewTruncatedFile("store/wal-4");
    ASSERT_TRUE(file.ok());
    auto writer = store::WalWriter::Create(std::move(*file), 0, 4);
    ASSERT_TRUE(writer.ok());
    store::WalRecord record;
    record.kind = store::WalRecordKind::kInsert;
    record.payload = store::EncodeTupleDelta("P", 1, {{"b"}, {"c"}});
    ASSERT_TRUE((*writer)->Append(record).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }

  Engine engine;
  auto recovered = store::RecoverStore(&env, "store", engine);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered->checkpoint_lsn, 4u);
  EXPECT_EQ(recovered->lsn, 5u);

  // Expected state computed flat: insert {b}, {c} into P in every member.
  std::vector<Database> members;
  for (size_t i = 0; i < kb.size(); ++i) {
    Database db = kb.World(i);
    size_t pos = *db.schema().PositionOf(Name("P"));
    db.ReplaceRelation(
        pos, db.relation_at(pos).Union(MakeRelation(1, {{"b"}, {"c"}})));
    members.push_back(std::move(db));
  }
  Knowledgebase expected = *Knowledgebase::FromDatabases(std::move(members));
  EXPECT_EQ(recovered->kb, expected);
  EXPECT_EQ(SerializeKnowledgebase(recovered->kb),
            SerializeKnowledgebase(expected));

  // Rewriting the recovered state checkpoints in the overlay format and
  // round-trips to the same value.
  ASSERT_TRUE(store::WriteCheckpoint(&env, "store", "store/checkpoint-5",
                                     recovered->kb, 5)
                  .ok());
  auto reread = store::ReadCheckpoint(&env, "store/checkpoint-5");
  ASSERT_TRUE(reread.ok()) << reread.status().message();
  EXPECT_EQ(reread->kb, expected);
}

}  // namespace
}  // namespace kbt
