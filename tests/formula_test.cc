#include "logic/formula.h"

#include <gtest/gtest.h>

#include "logic/printer.h"

namespace kbt {
namespace {

TEST(FormulaTest, FactoriesBuildExpectedKinds) {
  Formula atom = Atom("R", {Term::Const("a"), Term::Var("x")});
  EXPECT_EQ(atom->kind(), FormulaKind::kAtom);
  EXPECT_EQ(atom->relation(), Name("R"));
  EXPECT_EQ(atom->terms().size(), 2u);

  Formula eq = Equals(Term::Var("x"), Term::Const("a"));
  EXPECT_EQ(eq->kind(), FormulaKind::kEquals);

  EXPECT_EQ(Not(atom)->kind(), FormulaKind::kNot);
  EXPECT_EQ(Implies(atom, eq)->kind(), FormulaKind::kImplies);
  EXPECT_EQ(Iff(atom, eq)->kind(), FormulaKind::kIff);
  EXPECT_EQ(Exists(Name("x"), atom)->kind(), FormulaKind::kExists);
  EXPECT_EQ(Forall(Name("x"), atom)->kind(), FormulaKind::kForall);
}

TEST(FormulaTest, AndOrNormalizeArity) {
  Formula a = Atom("R", {Term::Const("a")});
  EXPECT_EQ(And(std::vector<Formula>{})->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Or(std::vector<Formula>{})->kind(), FormulaKind::kFalse);
  EXPECT_EQ(And(std::vector<Formula>{a}), a);
  EXPECT_EQ(Or(std::vector<Formula>{a}), a);
  EXPECT_EQ(And(a, a)->children().size(), 2u);
}

TEST(FormulaTest, MultiQuantifierClosure) {
  Formula body = Atom("R", {Term::Var("x"), Term::Var("y")});
  Formula f = Forall({Name("x"), Name("y")}, body);
  EXPECT_EQ(f->kind(), FormulaKind::kForall);
  EXPECT_EQ(f->variable(), Name("x"));
  EXPECT_EQ(f->children()[0]->variable(), Name("y"));
}

TEST(FormulaTest, NotEqualsSugar) {
  Formula ne = NotEquals(Term::Var("x"), Term::Const("a"));
  EXPECT_EQ(ne->kind(), FormulaKind::kNot);
  EXPECT_EQ(ne->children()[0]->kind(), FormulaKind::kEquals);
}

TEST(FormulaTest, StructuralEquality) {
  Formula a1 = Forall("x", Atom("R", {Term::Var("x")}));
  Formula a2 = Forall("x", Atom("R", {Term::Var("x")}));
  Formula b = Forall("y", Atom("R", {Term::Var("y")}));
  EXPECT_TRUE(StructurallyEqual(a1, a2));
  EXPECT_FALSE(StructurallyEqual(a1, b));  // Bound names compared verbatim.
  EXPECT_TRUE(StructurallyEqual(True(), True()));
  EXPECT_FALSE(StructurallyEqual(True(), False()));
}

TEST(PrinterTest, RendersConnectivesWithMinimalParens) {
  Formula r = Atom("R", {Term::Const("a")});
  Formula s = Atom("S", {Term::Const("b")});
  EXPECT_EQ(ToString(And(r, s)), "R(a) & S(b)");
  EXPECT_EQ(ToString(Or(And(r, s), r)), "R(a) & S(b) | R(a)");
  EXPECT_EQ(ToString(And(Or(r, s), r)), "(R(a) | S(b)) & R(a)");
  EXPECT_EQ(ToString(Not(And(r, s))), "!(R(a) & S(b))");
  EXPECT_EQ(ToString(Implies(r, s)), "R(a) -> S(b)");
  EXPECT_EQ(ToString(NotEquals(Term::Const("a"), Term::Const("b"))), "a != b");
}

TEST(PrinterTest, MergesQuantifierRuns) {
  Formula f = Forall({Name("x"), Name("y")},
                     Implies(Atom("R", {Term::Var("x"), Term::Var("y")}),
                             Atom("S", {Term::Var("x")})));
  EXPECT_EQ(ToString(f), "forall x, y: R(x, y) -> S(x)");
}

TEST(PrinterTest, ZeroAryAtom) {
  EXPECT_EQ(ToString(Atom("R4", {})), "R4()");
}

}  // namespace
}  // namespace kbt
