/// \file
/// Replication semantics tests — every agent driven deterministically:
/// primary handlers are called directly (they are plain methods), the
/// follower pulls over in-memory pipes through the production NetServer
/// frame loop, one PollOnce at a time.
///
/// Covered here:
///   * epoch-history meta file: roundtrip, typed rejection of every defect;
///   * fresh-follower checkpoint seeding + streaming, with bit-identity
///     (binary serialization equality) against the primary at every sync;
///   * catch-up from the primary's on-disk WAL once the in-memory feed has
///     wrapped;
///   * semi-sync acks: a pulling follower unblocks Apply; an idle subscriber
///     times it out with the typed "durable locally, unreplicated" error —
///     and the commit survives anyway;
///   * fencing, both directions: a newer-epoch subscriber deposes the
///     primary (read-only + kFenced forever after); stale-epoch fetches are
///     refused; a same-epoch subscriber *ahead* of the primary is data loss;
///   * fork placement: a subscriber whose log crosses a promotion fork is
///     re-seeded, one inside the common prefix is streamed;
///   * promote: the new epoch is durable in the follower's replmeta, writes
///     open up;
///   * the GC retention pin: Checkpoint() keeps WAL files a subscriber still
///     needs, and collects them once the subscriber is dropped.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/transport.h"
#include "rel/binary_io.h"
#include "repl/follower.h"
#include "repl/meta.h"
#include "repl/primary.h"
#include "serve/server.h"
#include "store/fault_env.h"

namespace kbt::repl {
namespace {

Knowledgebase InitialKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 1}}, {{"P", {{"a"}}}});
}

std::string KbBytes(const Knowledgebase& kb) {
  return SerializeKnowledgebase(kb);
}

/// A primary (durable serve::Server + Primary + NetServer frame loop) over a
/// fault-injection env, plus a pipe-based connect factory for followers. The
/// follower lives in the harness too so teardown order is right: follower
/// first (closing its pinned pipe), then the serving threads join.
class ReplHarness {
 public:
  explicit ReplHarness(PrimaryOptions popts = PrimaryOptions()) {
    store::StoreOptions sopts;
    sopts.env = &penv_;
    auto server = serve::Server::OpenDurable("primary", InitialKb(), sopts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    pserver_ = std::move(*server);
    auto primary = Primary::Attach(pserver_.get(), popts);
    EXPECT_TRUE(primary.ok()) << primary.status().ToString();
    primary_ = std::move(*primary);
    net::NetServerOptions nopts;
    nopts.repl = primary_.get();
    net_ = std::make_unique<net::NetServer>(pserver_.get(), nopts);
  }

  ~ReplHarness() {
    follower.reset();
    for (auto& t : server_ends_) t->Shutdown();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  FollowerOptions MakeFollowerOptions(const std::string& dir) {
    FollowerOptions fopts;
    fopts.node_id = "replica";
    fopts.dir = dir;
    fopts.initial = InitialKb();
    fopts.store.env = &fenv_;
    fopts.connect = [this] { return Connect(); };
    fopts.poll_wait_ms = 0;
    fopts.sleep_on_backoff = false;
    fopts.redirect_hint = "primary.example:7777";
    return fopts;
  }

  void OpenFollower(const std::string& dir = "replica") {
    auto opened = Follower::Open(MakeFollowerOptions(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    follower = std::move(*opened);
  }

  /// Drives PollOnce until the follower has applied `lsn` (bounded).
  void CatchUp(uint64_t lsn) {
    for (int i = 0; i < 300 && follower->applied_lsn() < lsn; ++i) {
      Status s = follower->PollOnce();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    ASSERT_EQ(follower->applied_lsn(), lsn);
  }

  StatusOr<std::unique_ptr<net::Transport>> Connect() {
    auto [client_end, server_end] = net::MakePipePair();
    std::shared_ptr<net::Transport> shared = std::move(server_end);
    server_ends_.push_back(shared);
    threads_.emplace_back(
        [this, shared] { net_->ServeConnection(*shared); });
    return std::unique_ptr<net::Transport>(std::move(client_end));
  }

  serve::Server& pserver() { return *pserver_; }
  Primary& primary() { return *primary_; }
  store::FaultInjectionEnv& penv() { return penv_; }
  store::FaultInjectionEnv& fenv() { return fenv_; }

  std::unique_ptr<Follower> follower;

 private:
  store::FaultInjectionEnv penv_;
  store::FaultInjectionEnv fenv_;
  std::unique_ptr<serve::Server> pserver_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<net::NetServer> net_;
  std::vector<std::shared_ptr<net::Transport>> server_ends_;
  std::vector<std::thread> threads_;
};

// --- Epoch-history meta file ------------------------------------------------

TEST(ReplMetaTest, RoundtripAndEpoch) {
  ReplMeta meta;
  EXPECT_EQ(meta.epoch(), 0u);
  meta.history = {{1, 0}, {2, 17}, {5, 40}};
  EXPECT_EQ(meta.epoch(), 5u);

  std::string bytes = EncodeReplMeta(meta);
  auto decoded = DecodeReplMeta(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, meta);
}

TEST(ReplMetaTest, EveryDefectIsDataLoss) {
  ReplMeta meta;
  meta.history = {{1, 0}, {2, 3}};
  std::string good = EncodeReplMeta(meta);

  // Flipping any byte must be detected (magic, version, CRC or payload).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x40;
    auto decoded = DecodeReplMeta(bad);
    EXPECT_FALSE(decoded.ok()) << "byte " << i << " flip undetected";
  }
  // Truncation at every length.
  for (size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(DecodeReplMeta(good.substr(0, n)).ok()) << "len " << n;
  }
  // Trailing bytes.
  EXPECT_EQ(DecodeReplMeta(good + "x").status().code(), StatusCode::kDataLoss);
  // Non-increasing epochs: structurally invalid lineage.
  ReplMeta dup;
  dup.history = {{2, 0}, {2, 5}};
  EXPECT_EQ(DecodeReplMeta(EncodeReplMeta(dup)).status().code(),
            StatusCode::kDataLoss);
}

TEST(ReplMetaTest, FileRoundtripAndAbsence) {
  store::FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  EXPECT_EQ(ReadReplMeta(&env, "d").status().code(), StatusCode::kNotFound);

  ReplMeta meta;
  meta.history = {{1, 0}, {3, 9}};
  ASSERT_TRUE(WriteReplMeta(&env, "d", meta).ok());
  auto read = ReadReplMeta(&env, "d");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, meta);
}

// --- Seeding + streaming ----------------------------------------------------

TEST(ReplTest, FreshFollowerSeedsFromCheckpointThenStreams) {
  ReplHarness h;
  ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());
  ASSERT_TRUE(h.pserver().Apply("tau{Q(c)}").ok());

  // A fresh follower (empty dir) is always seeded by checkpoint, then pulls
  // the records the checkpoint predates.
  h.OpenFollower();
  h.CatchUp(2);
  EXPECT_EQ(h.follower->stats().snapshot_installs, 1u);
  EXPECT_EQ(h.follower->epoch(), 1u);
  EXPECT_EQ(h.follower->state(), FollowerState::kIdle);  // PollOnce-driven.

  // Bit-identity: the replicated state's binary serialization equals the
  // primary's, not just "the same answers".
  EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
            KbBytes(h.pserver().store()->kb()));

  // Replica reads serve the caught-up snapshot.
  auto session = h.follower->server()->StartSession();
  auto r = session->Holds("Q(c)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->holds);

  // New commits flow through.
  ASSERT_TRUE(h.pserver().Apply("tau{P(d)}").ok());
  h.CatchUp(3);
  EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
            KbBytes(h.pserver().store()->kb()));
}

TEST(ReplTest, FollowerIsReadOnlyWithRedirect) {
  ReplHarness h;
  h.OpenFollower();
  auto v = h.follower->server()->Apply("tau{P(x)}");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kReadOnly);
  EXPECT_NE(v.status().ToString().find("primary.example:7777"),
            std::string::npos)
      << v.status().ToString();
}

TEST(ReplTest, CatchUpFromDiskOncePastTheFeed) {
  PrimaryOptions popts;
  popts.feed_capacity = 2;
  ReplHarness h(popts);
  h.OpenFollower();  // Seeded at lsn 0.
  ASSERT_EQ(h.follower->applied_lsn(), 0u);

  // Six commits: the two-slot feed forgets the first four, so catch-up must
  // come from the primary's own wal files.
  const char* exprs[] = {"tau{P(b)}", "tau{P(c)}", "tau{Q(d)}",
                         "tau{Q(e)}", "tau{P(f)}", "tau{Q(g)}"};
  for (const char* e : exprs) ASSERT_TRUE(h.pserver().Apply(e).ok());

  h.CatchUp(6);
  EXPECT_EQ(h.follower->stats().snapshot_installs, 1u);  // No re-seed needed.
  EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
            KbBytes(h.pserver().store()->kb()));
}

// --- Semi-sync ---------------------------------------------------------------

TEST(ReplTest, SemiSyncAckedByPullingFollower) {
  PrimaryOptions popts;
  popts.semi_sync = true;
  popts.semi_sync_timeout_ms = 10'000;
  ReplHarness h(popts);
  h.OpenFollower();

  // Apply blocks until the follower's next fetch acks the lsn; pull on this
  // thread while the apply waits on another.
  StatusOr<uint64_t> version = 0;
  std::thread applier(
      [&] { version = h.pserver().Apply("tau{P(b)}"); });
  for (int i = 0; i < 300 && h.follower->stats().primary_lsn < 1; ++i) {
    ASSERT_TRUE(h.follower->PollOnce().ok());
  }
  // Keep polling until the ack (the fetch *after* the apply) lands.
  for (int i = 0; i < 300 && h.primary().stats().min_acked_lsn < 1; ++i) {
    ASSERT_TRUE(h.follower->PollOnce().ok());
  }
  applier.join();
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(h.primary().stats().semi_sync_timeouts, 0u);
}

TEST(ReplTest, SemiSyncTimeoutIsDurableLocallyNeverRolledBack) {
  PrimaryOptions popts;
  popts.semi_sync = true;
  popts.semi_sync_timeout_ms = 50;
  ReplHarness h(popts);
  h.OpenFollower();  // Subscribed, but never polls: no acks.

  auto version = h.pserver().Apply("tau{P(b)}");
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(h.primary().stats().semi_sync_timeouts, 1u);

  // The commit is durable and published regardless — the error means "on no
  // replica yet", not "undone".
  EXPECT_EQ(h.pserver().store()->lsn(), 1u);
  EXPECT_EQ(h.pserver().stats().snapshot_version, 1u);
  h.CatchUp(1);  // And the idle follower can still pick it up afterwards.
  EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
            KbBytes(h.pserver().store()->kb()));
}

// --- Fencing -----------------------------------------------------------------

TEST(ReplTest, NewerEpochSubscriberDeposesPrimary) {
  ReplHarness h;
  ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());

  net::WireReplSubscribe sub;
  sub.follower_id = "usurper";
  sub.epoch = 2;
  sub.start_lsn = 1;
  sub.has_state = 1;
  auto reply = h.primary().HandleSubscribe(sub);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFenced);

  // Deposed: fenced flag up, writes refused, replication refused — forever.
  EXPECT_TRUE(h.primary().fenced());
  auto v = h.pserver().Apply("tau{P(c)}");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kReadOnly);

  net::WireReplFetch fetch;
  fetch.follower_id = "replica";
  fetch.epoch = 1;
  fetch.after_lsn = 0;
  auto records = h.primary().HandleFetch(fetch, nullptr);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kFenced);
  EXPECT_GE(h.primary().stats().fenced_refusals, 1u);
}

TEST(ReplTest, StaleEpochFetchIsFenced) {
  ReplHarness h;
  net::WireReplFetch fetch;
  fetch.follower_id = "old";
  fetch.epoch = 0;  // Below the primary's epoch 1.
  auto records = h.primary().HandleFetch(fetch, nullptr);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kFenced);
  EXPECT_FALSE(h.primary().fenced());  // Refusing a stale peer ≠ deposed.
}

TEST(ReplTest, SameEpochAheadOfPrimaryIsDataLoss) {
  ReplHarness h;
  ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());  // Primary at lsn 1.

  net::WireReplSubscribe sub;
  sub.follower_id = "ahead";
  sub.epoch = 1;
  sub.start_lsn = 5;  // Claims commits this primary never made.
  sub.has_state = 1;
  auto reply = h.primary().HandleSubscribe(sub);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDataLoss);
}

TEST(ReplTest, ForkPlacementDecidesStreamVersusReseed) {
  // A store that lived through a promotion: epoch 1 from lsn 0, epoch 2 from
  // lsn 3. Subscribers are judged against that lineage.
  store::FaultInjectionEnv env;
  store::StoreOptions sopts;
  sopts.env = &env;
  auto server = serve::Server::OpenDurable("primary", InitialKb(), sopts);
  ASSERT_TRUE(server.ok());
  for (const char* e : {"tau{P(b)}", "tau{P(c)}", "tau{Q(d)}"}) {
    ASSERT_TRUE((*server)->Apply(e).ok());
  }
  ReplMeta meta;
  meta.history = {{1, 0}, {2, 3}};
  ASSERT_TRUE(WriteReplMeta(&env, "primary", meta).ok());
  auto primary = Primary::Attach(server->get(), PrimaryOptions());
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ((*primary)->epoch(), 2u);

  // An epoch-1 subscriber inside the common prefix (lsn 2 ≤ fork 3) streams.
  net::WireReplSubscribe sub;
  sub.follower_id = "prefix";
  sub.epoch = 1;
  sub.start_lsn = 2;
  sub.has_state = 1;
  auto reply = (*primary)->HandleSubscribe(sub);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->need_snapshot, 0);
  EXPECT_EQ(reply->epoch, 2u);

  // One past the fork (lsn 5 > 3) holds records this lineage never adopted:
  // re-seed, never "catch up" across the fork.
  sub.follower_id = "forked";
  sub.start_lsn = 5;
  reply = (*primary)->HandleSubscribe(sub);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->need_snapshot, 1);
  EXPECT_GE((*primary)->stats().snapshot_seeds, 1u);
}

// --- Promote -----------------------------------------------------------------

TEST(ReplTest, PromotePersistsEpochThenOpensWrites) {
  ReplHarness h;
  ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());
  ASSERT_TRUE(h.pserver().Apply("tau{P(c)}").ok());
  h.OpenFollower();
  h.CatchUp(2);

  auto epoch = h.follower->Promote();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);
  EXPECT_EQ(h.follower->state(), FollowerState::kPromoted);

  // The fork point is durable: (epoch 2, start 2) appended to the lineage.
  auto meta = ReadReplMeta(&h.fenv(), "replica");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_FALSE(meta->history.empty());
  EXPECT_EQ(meta->history.back(), (std::pair<uint64_t, uint64_t>{2, 2}));

  // And writes are open.
  EXPECT_FALSE(h.follower->server()->read_only());
  auto v = h.follower->server()->Apply("tau{Q(z)}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
}

// --- Mid-life re-seed (falling below the GC horizon) -------------------------

TEST(ReplTest, FallingBelowHorizonReseedsByDefault) {
  ReplHarness h;
  h.OpenFollower();  // Seeded at lsn 0; then stops pulling.

  // The primary moves on and garbage-collects the log the follower needs
  // (its pin must be released first — a dead follower is dropped).
  for (const char* e : {"tau{P(b)}", "tau{P(c)}", "tau{Q(d)}"}) {
    ASSERT_TRUE(h.pserver().Apply(e).ok());
  }
  h.primary().DropSubscriber("replica");
  ASSERT_TRUE(h.pserver().Checkpoint().ok());
  ASSERT_FALSE(h.penv().FileExists("primary/wal-0"));

  // Catch-up now needs a fresh checkpoint: the default policy installs it
  // in place (server() is replaced) and streaming resumes.
  h.CatchUp(3);
  EXPECT_EQ(h.follower->stats().snapshot_installs, 2u);
  EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
            KbBytes(h.pserver().store()->kb()));
}

TEST(ReplTest, ReseedAfterOpenOffMakesMidLifeReseedTerminal) {
  ReplHarness h;
  FollowerOptions fopts = h.MakeFollowerOptions("replica");
  fopts.reseed_after_open = false;
  auto opened = Follower::Open(std::move(fopts));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  h.follower = std::move(*opened);

  for (const char* e : {"tau{P(b)}", "tau{P(c)}", "tau{Q(d)}"}) {
    ASSERT_TRUE(h.pserver().Apply(e).ok());
  }
  h.primary().DropSubscriber("replica");
  ASSERT_TRUE(h.pserver().Checkpoint().ok());

  // Embedders holding server() long-lived asked for a restart instead of a
  // swapped pointer: the demanded re-seed is terminal.
  Status s = Status::OK();
  for (int i = 0; i < 300 && s.ok() &&
                  h.follower->state() != FollowerState::kLost;
       ++i) {
    s = h.follower->PollOnce();
  }
  EXPECT_EQ(h.follower->state(), FollowerState::kLost);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(h.follower->applied_lsn(), 0u);  // Nothing half-applied.
}

// --- GC retention pin --------------------------------------------------------

TEST(ReplTest, CheckpointRetainsWalFilesASubscriberStillNeeds) {
  ReplHarness h;

  // A subscriber parked at lsn 0 (subscribed, never acked past it).
  net::WireReplSubscribe sub;
  sub.follower_id = "slow";
  sub.epoch = 1;
  sub.start_lsn = 0;
  sub.has_state = 1;
  ASSERT_TRUE(h.primary().HandleSubscribe(sub).ok());

  ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());
  ASSERT_TRUE(h.pserver().Apply("tau{P(c)}").ok());
  ASSERT_TRUE(h.pserver().Apply("tau{Q(d)}").ok());

  // Checkpoint at lsn 3 would normally collect wal-0; the pin (min acked
  // lsn = 0) must keep everything needed to serve records after lsn 0.
  ASSERT_TRUE(h.pserver().Checkpoint().ok());
  EXPECT_TRUE(h.penv().FileExists("primary/wal-0"));
  EXPECT_TRUE(h.penv().FileExists("primary/checkpoint-0"));

  // The retained log really serves: a fetch after lsn 0 reads from disk.
  net::WireReplFetch fetch;
  fetch.follower_id = "slow";
  fetch.epoch = 1;
  fetch.after_lsn = 0;
  auto records = h.primary().HandleFetch(fetch, nullptr);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_FALSE(records->records.empty());
  EXPECT_EQ(records->start_lsn, 1u);

  // Dropping the subscriber releases the pin: the next checkpoint collects.
  h.primary().DropSubscriber("slow");
  ASSERT_TRUE(h.pserver().Apply("tau{Q(e)}").ok());
  ASSERT_TRUE(h.pserver().Checkpoint().ok());
  EXPECT_FALSE(h.penv().FileExists("primary/wal-0"));
  EXPECT_FALSE(h.penv().FileExists("primary/checkpoint-0"));
}

}  // namespace
}  // namespace kbt::repl
