/// \file
/// Crash-recovery tests, in three tiers:
///
///  1. RecoverStore unit tests: checkpoint selection (newest valid wins, the
///     lsn in the file name must match the header), WAL suffix replay, the
///     tolerated crash leftovers (missing wal, shorter-than-header wal, torn
///     durable tail), and the fatal ones (start_lsn mismatch, all checkpoints
///     corrupt).
///  2. The crash matrix: a fixed workload runs against a DurableEngine over
///     the fault-injection env; for each crash flavor × each write-side
///     syscall index, the env "crashes" there, the store is recovered, and the
///     recovered knowledgebase must be bit-identical to the state after some
///     acknowledged prefix of the workload (k or k+1 commits — the +1 is the
///     commit whose fsync landed but whose acknowledgment the crash ate).
///  3. Byte-stability: workloads modeled on the examples/ programs committed
///     through a DurableEngine reopen — before and after a checkpoint — to a
///     knowledgebase whose binary serialization is byte-identical.

#include "store/recovery.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/kbt.h"
#include "rel/binary_io.h"
#include "store/checkpoint.h"
#include "store/durable_engine.h"
#include "store/fault_env.h"

namespace kbt::store {
namespace {

StoreOptions WithEnv(FaultInjectionEnv* env) {
  StoreOptions options;
  options.env = env;
  return options;
}

Knowledgebase FlightKb() {
  return *MakeSingletonKb({{"R1", 2}}, {{"R1",
                                         {{"toronto", "ottawa"},
                                          {"ottawa", "montreal"},
                                          {"montreal", "quebec"},
                                          {"halifax", "toronto"}}}});
}

/// Writes a WAL holding `records` as `path` with the given start_lsn, synced.
void WriteWalFile(FaultInjectionEnv* env, const std::string& path,
                  uint64_t start_lsn, const std::vector<WalRecord>& records) {
  auto file = env->NewAppendableFile(path);
  ASSERT_TRUE(file.ok());
  auto writer = WalWriter::Create(std::move(*file), 0, start_lsn);
  ASSERT_TRUE(writer.ok());
  for (const WalRecord& r : records) ASSERT_TRUE((*writer)->Append(r).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

/// Overwrites `path` with `image`, synced.
void OverwriteFile(FaultInjectionEnv* env, const std::string& path,
                   const std::string& image) {
  auto file = env->NewTruncatedFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(image).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST(StoreFileNameTest, RoundTripsAndRejectsJunk) {
  EXPECT_EQ(CheckpointFileName(0), "checkpoint-0");
  EXPECT_EQ(WalFileName(17), "wal-17");
  EXPECT_EQ(ParseStoreLsnSuffix("checkpoint-12", "checkpoint"), 12u);
  EXPECT_EQ(ParseStoreLsnSuffix("wal-0", "wal"), 0u);
  EXPECT_EQ(ParseStoreLsnSuffix("wal-12", "checkpoint"), std::nullopt);
  EXPECT_EQ(ParseStoreLsnSuffix("checkpoint-", "checkpoint"), std::nullopt);
  EXPECT_EQ(ParseStoreLsnSuffix("checkpoint-12x", "checkpoint"), std::nullopt);
  EXPECT_EQ(ParseStoreLsnSuffix("checkpoint-12.tmp", "checkpoint"),
            std::nullopt);
  EXPECT_EQ(ParseStoreLsnSuffix("checkpoint", "checkpoint"), std::nullopt);
}

TEST(RecoverStoreTest, EmptyDirectoryIsNotFound) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(RecoverStoreTest, CheckpointWithoutWalIsTheWholeState) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Knowledgebase kb = FlightKb();
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-3", kb, 3).ok());
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered->kb, kb);
  EXPECT_EQ(recovered->checkpoint_lsn, 3u);
  EXPECT_EQ(recovered->lsn, 3u);
  EXPECT_FALSE(recovered->wal_exists);
}

TEST(RecoverStoreTest, ReplaysTheWalSuffix) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Knowledgebase kb = FlightKb();
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-0", kb, 0).ok());
  WriteWalFile(&env, "db/wal-0", 0,
               {{WalRecordKind::kInsert,
                 EncodeTupleDelta("R1", 2, {{"quebec", "halifax"}})},
                {WalRecordKind::kTransform, "tau{ !R1(toronto, ottawa) }"}});
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered->lsn, 2u);
  EXPECT_TRUE(recovered->wal_exists);
  EXPECT_EQ(recovered->wal_valid_bytes, recovered->wal_file_size);

  // The replayed state matches an independent in-memory run of the same ops.
  Engine shadow_engine;
  Knowledgebase shadow = kb;
  shadow = *ApplyWalRecord(
      shadow_engine,
      {WalRecordKind::kInsert, EncodeTupleDelta("R1", 2, {{"quebec", "halifax"}})},
      shadow);
  shadow = *shadow_engine.Apply("tau{ !R1(toronto, ottawa) }", shadow);
  EXPECT_EQ(recovered->kb, shadow);
  EXPECT_EQ(SerializeKnowledgebase(recovered->kb),
            SerializeKnowledgebase(shadow));
}

TEST(RecoverStoreTest, NewestValidCheckpointWinsOverCorruptNewest) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Knowledgebase kb = FlightKb();
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-0", kb, 0).ok());
  WriteWalFile(&env, "db/wal-0", 0,
               {{WalRecordKind::kInsert,
                 EncodeTupleDelta("R1", 2, {{"quebec", "halifax"}})}});
  // A newer checkpoint that a crash corrupted: recovery must skip it and land
  // on checkpoint-0 + wal-0 instead.
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-5", kb, 5).ok());
  auto image = env.ReadFile("db/checkpoint-5");
  ASSERT_TRUE(image.ok());
  (*image)[image->size() / 2] ^= 0x01;
  OverwriteFile(&env, "db/checkpoint-5", *image);

  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered->checkpoint_lsn, 0u);
  EXPECT_EQ(recovered->lsn, 1u);
}

TEST(RecoverStoreTest, LsnNameMismatchCountsAsCorruption) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Knowledgebase kb = FlightKb();
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-0", kb, 0).ok());
  // File named checkpoint-7 whose header says lsn 3: not trustworthy.
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-7", kb, 3).ok());
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->checkpoint_lsn, 0u);
}

TEST(RecoverStoreTest, AllCheckpointsCorruptIsDataLoss) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  ASSERT_TRUE(
      WriteCheckpoint(&env, "db", "db/checkpoint-2", FlightKb(), 2).ok());
  auto image = env.ReadFile("db/checkpoint-2");
  ASSERT_TRUE(image.ok());
  (*image)[0] = 'X';
  OverwriteFile(&env, "db/checkpoint-2", *image);
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

TEST(RecoverStoreTest, WalStartLsnMismatchIsDataLoss) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  ASSERT_TRUE(
      WriteCheckpoint(&env, "db", "db/checkpoint-0", FlightKb(), 0).ok());
  WriteWalFile(&env, "db/wal-0", 9, {});  // Header claims a different origin.
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

TEST(RecoverStoreTest, ShorterThanHeaderWalMeansNoCommits) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("db").ok());
  Knowledgebase kb = FlightKb();
  ASSERT_TRUE(WriteCheckpoint(&env, "db", "db/checkpoint-0", kb, 0).ok());
  // A crash can leave wal-0 existing with 0..15 durable bytes (the dirent
  // became durable, the header bytes did not).
  OverwriteFile(&env, "db/wal-0", "KBTW");
  Engine engine;
  auto recovered = RecoverStore(&env, "db", engine);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered->kb, kb);
  EXPECT_EQ(recovered->lsn, 0u);
  EXPECT_TRUE(recovered->wal_exists);
  EXPECT_EQ(recovered->wal_valid_bytes, 0u);
}

TEST(DurableEngineRecoveryTest, TornDurableTailIsTruncatedOnOpen) {
  FaultInjectionEnv env;
  Knowledgebase committed{Schema()};
  {
    auto store = DurableEngine::Open("db", FlightKb(), WithEnv(&env));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->InsertTuples("R1", {{"quebec", "halifax"}}).ok());
    committed = (*store)->kb();
  }
  // The OS flushed half of a record the process never acknowledged (a real
  // filesystem may persist un-fsynced bytes): recovery must cut it.
  {
    auto file = env.NewAppendableFile("db/wal-0");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("\x13\x37GARBAGE").ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto store = DurableEngine::Open("db", Knowledgebase(Schema()), WithEnv(&env));
  ASSERT_TRUE(store.ok()) << store.status().message();
  EXPECT_EQ((*store)->kb(), committed);
  EXPECT_EQ((*store)->lsn(), 1u);
  // The torn bytes are physically gone and appending resumes cleanly.
  ASSERT_TRUE((*store)->InsertTuples("R1", {{"halifax", "quebec"}}).ok());
  auto image = env.ReadFile("db/wal-0");
  ASSERT_TRUE(image.ok());
  auto contents = ReadWal(*image);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->valid_bytes, image->size());
}

// ---------------------------------------------------------------------------
// The crash matrix.
// ---------------------------------------------------------------------------

struct WorkloadOp {
  enum Kind { kApply, kInsert, kDelete, kCheckpoint } kind;
  std::string expr_or_relation;
  std::vector<std::vector<std::string>> rows;

  bool changes_state() const { return kind != kCheckpoint; }
};

std::vector<WorkloadOp> MatrixWorkload() {
  return {
      {WorkloadOp::kInsert, "R1", {{"quebec", "halifax"}}},
      {WorkloadOp::kApply,
       "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) }",
       {}},
      {WorkloadOp::kCheckpoint, "", {}},
      {WorkloadOp::kApply, "tau{ !R1(toronto, ottawa) }", {}},
      {WorkloadOp::kDelete, "R1", {{"ottawa", "montreal"}}},
      {WorkloadOp::kApply, "tau{ R1(montreal, toronto) } >> lub", {}},
  };
}

/// Runs `op` against the store; true on success.
bool RunOp(DurableEngine* store, const WorkloadOp& op) {
  switch (op.kind) {
    case WorkloadOp::kApply:
      return store->Apply(op.expr_or_relation).ok();
    case WorkloadOp::kInsert:
      return store->InsertTuples(op.expr_or_relation, op.rows).ok();
    case WorkloadOp::kDelete:
      return store->DeleteTuples(op.expr_or_relation, op.rows).ok();
    case WorkloadOp::kCheckpoint:
      return store->Checkpoint().ok();
  }
  return false;
}

/// shadow[i] = the knowledgebase after the first i state-changing ops, from an
/// independent in-memory run (the durable store is never compared to itself).
std::vector<Knowledgebase> ShadowStates(const Knowledgebase& initial,
                                        const std::vector<WorkloadOp>& ops) {
  Engine engine;
  std::vector<Knowledgebase> shadow = {initial};
  Knowledgebase kb = initial;
  for (const WorkloadOp& op : ops) {
    switch (op.kind) {
      case WorkloadOp::kApply:
        kb = *engine.Apply(op.expr_or_relation, kb);
        break;
      case WorkloadOp::kInsert:
      case WorkloadOp::kDelete: {
        WalRecord record;
        record.kind = op.kind == WorkloadOp::kInsert ? WalRecordKind::kInsert
                                                     : WalRecordKind::kDelete;
        size_t arity = op.rows.empty() ? 0 : op.rows[0].size();
        record.payload = EncodeTupleDelta(op.expr_or_relation, arity, op.rows);
        kb = *ApplyWalRecord(engine, record, kb);
        break;
      }
      case WorkloadOp::kCheckpoint:
        continue;
    }
    shadow.push_back(kb);
  }
  return shadow;
}

TEST(CrashMatrixTest, EveryCrashPointRecoversToACommittedPrefix) {
  const Knowledgebase initial = FlightKb();
  const std::vector<WorkloadOp> ops = MatrixWorkload();
  const std::vector<Knowledgebase> shadow = ShadowStates(initial, ops);

  size_t cells = 0;
  for (FaultKind kind :
       {FaultKind::kCrashBefore, FaultKind::kCrashAfter, FaultKind::kCrashTorn}) {
    for (uint64_t op_index = 1;; ++op_index) {
      FaultInjectionEnv env;
      env.FailAt(op_index, kind);
      size_t acked = 0;
      {
        auto store = DurableEngine::Open("db", initial, WithEnv(&env));
        if (store.ok()) {
          for (const WorkloadOp& op : ops) {
            bool ok = RunOp(store->get(), op);
            if (ok && op.changes_state()) ++acked;
            if (env.crashed()) break;
          }
        }
      }
      if (!env.crashed()) {
        // The failpoint sits beyond the workload's syscalls: matrix complete.
        EXPECT_EQ(acked, shadow.size() - 1);
        break;
      }
      ++cells;

      env.RecoverFromCrash();
      auto recovered = DurableEngine::Open("db", initial, WithEnv(&env));
      ASSERT_TRUE(recovered.ok())
          << "kind " << static_cast<int>(kind) << " op " << op_index << ": "
          << recovered.status().message();
      // Every acknowledged commit survived; at most one extra commit (whose
      // fsync landed but whose acknowledgment the crash ate) may appear.
      uint64_t lsn = (*recovered)->lsn();
      ASSERT_GE(lsn, acked) << "kind " << static_cast<int>(kind) << " op "
                            << op_index;
      ASSERT_LE(lsn, acked + 1) << "kind " << static_cast<int>(kind) << " op "
                                << op_index;
      ASSERT_LT(lsn, shadow.size());
      // Bit-equivalence with the shadow run, value- and byte-level.
      EXPECT_EQ((*recovered)->kb(), shadow[lsn])
          << "kind " << static_cast<int>(kind) << " op " << op_index;
      EXPECT_EQ(SerializeKnowledgebase((*recovered)->kb()),
                SerializeKnowledgebase(shadow[lsn]));
    }
  }
  // The matrix actually exercised a healthy number of crash points.
  EXPECT_GE(cells, 45u);
}

TEST(CrashMatrixTest, RecoveredStoreAcceptsNewCommits) {
  // A focused follow-up to the matrix: crash at a few representative points,
  // recover, and drive the store forward to the workload's final state.
  const Knowledgebase initial = FlightKb();
  const std::vector<WorkloadOp> ops = MatrixWorkload();
  const std::vector<Knowledgebase> shadow = ShadowStates(initial, ops);

  for (uint64_t op_index : {3u, 11u, 17u, 23u}) {
    FaultInjectionEnv env;
    env.FailAt(op_index, FaultKind::kCrashBefore);
    {
      auto store = DurableEngine::Open("db", initial, WithEnv(&env));
      if (store.ok()) {
        for (const WorkloadOp& op : ops) {
          RunOp(store->get(), op);
          if (env.crashed()) break;
        }
      }
    }
    if (!env.crashed()) continue;
    env.RecoverFromCrash();
    auto recovered = DurableEngine::Open("db", initial, WithEnv(&env));
    ASSERT_TRUE(recovered.ok()) << "op " << op_index;
    uint64_t lsn = (*recovered)->lsn();
    // Re-run every state-changing op past the recovered prefix.
    size_t state_index = 0;
    for (const WorkloadOp& op : ops) {
      if (!op.changes_state()) continue;
      ++state_index;
      if (state_index <= lsn) continue;
      ASSERT_TRUE(RunOp(recovered->get(), op)) << "op " << op_index;
    }
    EXPECT_EQ((*recovered)->kb(), shadow.back()) << "op " << op_index;
    EXPECT_EQ(SerializeKnowledgebase((*recovered)->kb()),
              SerializeKnowledgebase(shadow.back()));
  }
}

// ---------------------------------------------------------------------------
// Byte-stability of the examples/ workloads.
// ---------------------------------------------------------------------------

struct ExampleWorkload {
  std::string name;
  Knowledgebase initial;
  std::vector<std::string> expressions;
};

std::vector<ExampleWorkload> ExampleWorkloads() {
  std::vector<ExampleWorkload> workloads;
  // quickstart.cpp: the §1 flight network — reachability query, then a
  // deletion by denial, committed as transformations.
  workloads.push_back(
      {"quickstart", FlightKb(),
       {"tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) }",
        "tau{ !R1(toronto, ottawa) }",
        "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } "
        ">> pi[R2]"}});
  // indefinite.cpp: disjunctive alarms make a multi-world kb, probes narrow
  // it, a hypothetical closes with glb.
  workloads.push_back(
      {"indefinite", *MakeSingletonKb({{"Failed", 1}}, {}),
       {"tau{ Failed(web1) | Failed(web2) | Failed(web3) }",
        "tau{ Failed(db1) | Failed(db2) }", "tau{ !Failed(web2) }",
        "tau{ Failed(db1) }", "tau{ Failed(web1) } >> glb"}});
  // robots.cpp: a counterfactual insert joined back with lub.
  workloads.push_back({"robots",
                       *MakeSingletonKb({{"R1", 1}}, {{"R1", {{"u"}}}}),
                       {"tau{ R1(v) } >> lub"}});
  // graph_analysis.cpp (in miniature): a sentence whose consequent marks a
  // global property, projected out.
  workloads.push_back(
      {"graph_analysis",
       *MakeSingletonKb({{"R1", 2}}, {{"R1", {{"a", "b"}, {"b", "c"}}}}),
       {"tau{ (forall x, y: R1(x, y) -> R2(x, y)) -> R4() } >> pi[R4]"}});
  return workloads;
}

TEST(ExamplesByteStabilityTest, CheckpointWalReplayRoundTripIsByteStable) {
  for (const ExampleWorkload& w : ExampleWorkloads()) {
    FaultInjectionEnv env;
    std::string final_bytes;
    {
      auto store = DurableEngine::Open("db", w.initial, WithEnv(&env));
      ASSERT_TRUE(store.ok()) << w.name;
      for (const std::string& expr : w.expressions) {
        auto r = (*store)->Apply(expr);
        ASSERT_TRUE(r.ok()) << w.name << ": " << expr << ": "
                            << r.status().message();
      }
      final_bytes = SerializeKnowledgebase((*store)->kb());
    }
    // Reopen replays checkpoint-0 + the whole WAL.
    {
      auto store = DurableEngine::Open("db", Knowledgebase(Schema()),
                                       WithEnv(&env));
      ASSERT_TRUE(store.ok()) << w.name;
      EXPECT_EQ(SerializeKnowledgebase((*store)->kb()), final_bytes) << w.name;
      EXPECT_EQ((*store)->lsn(), w.expressions.size()) << w.name;
      // Roll a checkpoint and reopen again: now recovery loads the snapshot
      // instead of replaying — the bytes must not move.
      ASSERT_TRUE((*store)->Checkpoint().ok()) << w.name;
    }
    {
      auto store = DurableEngine::Open("db", Knowledgebase(Schema()),
                                       WithEnv(&env));
      ASSERT_TRUE(store.ok()) << w.name;
      EXPECT_EQ(SerializeKnowledgebase((*store)->kb()), final_bytes) << w.name;
    }
  }
}

}  // namespace
}  // namespace kbt::store
