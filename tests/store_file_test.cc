/// \file
/// Tests for the store's I/O boundary: PosixEnv against a real scratch
/// directory, and the FaultInjectionEnv crash model the recovery property
/// tests are built on (sync durability, crash dropping un-synced state,
/// namespace changes pending until SyncDir, short writes, one-shot failpoints).

#include "store/file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "store/fault_env.h"

namespace kbt::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "kbt_store_file_test_" + name;
}

TEST(PosixEnvTest, AppendSyncReadRoundTrip) {
  Env* env = Env::Default();
  std::string path = TempPath("roundtrip");
  {
    auto file = env->NewTruncatedFile(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto contents = env->ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");

  // Appendable open resumes at the end.
  {
    auto file = env->NewAppendableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("!").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  contents = env->ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world!");

  ASSERT_TRUE(env->RemoveFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, TruncateDropsTail) {
  Env* env = Env::Default();
  std::string path = TempPath("truncate");
  {
    auto file = env->NewTruncatedFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env->TruncateFile(path, 4).ok());
  auto contents = env->ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "0123");
  ASSERT_TRUE(env->RemoveFile(path).ok());
}

TEST(PosixEnvTest, RenameReplacesTargetAndListDirSeesResult) {
  Env* env = Env::Default();
  std::string dir = TempPath("renamedir");
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir).ok());  // Idempotent.
  std::string from = dir + "/a.tmp";
  std::string to = dir + "/a";
  {
    auto file = env->NewTruncatedFile(to);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("old").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env->NewTruncatedFile(from);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("new").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  ASSERT_TRUE(env->SyncDir(dir).ok());
  EXPECT_FALSE(env->FileExists(from));
  auto contents = env->ReadFile(to);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new");
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "a");
  ASSERT_TRUE(env->RemoveFile(to).ok());
}

TEST(PosixEnvTest, MissingFilesReportNotFound) {
  Env* env = Env::Default();
  std::string path = TempPath("never_created");
  auto contents = env->ReadFile(path);
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_FALSE(env->RemoveFile(path).ok());
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv: the crash model.
// ---------------------------------------------------------------------------

/// Creates `path` holding `data`, fully synced (content + existence durable).
void WriteDurable(FaultInjectionEnv* env, const std::string& path,
                  const std::string& data) {
  auto file = env->NewAppendableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(data).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST(FaultEnvTest, UnsyncedAppendsDieInTheCrash) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/wal", "AB");
  auto file = env.NewAppendableFile("d/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("CD").ok());
  // Live view sees the append immediately...
  auto live = env.ReadFile("d/wal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "ABCD");
  // ...but only synced bytes survive the crash.
  env.Crash();
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE(env.ReadFile("d/wal").ok());  // All calls fail while crashed.
  env.RecoverFromCrash();
  EXPECT_FALSE(env.crashed());
  auto durable = env.ReadFile("d/wal");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "AB");
}

TEST(FaultEnvTest, SyncMakesContentAndExistenceDurable) {
  FaultInjectionEnv env;
  // A brand-new file that was never synced does not survive at all.
  {
    auto file = env.NewAppendableFile("d/ephemeral");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("gone").ok());
  }
  // A synced file survives with exactly the synced prefix.
  {
    auto file = env.NewAppendableFile("d/kept");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("stay").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append("tail").ok());
  }
  env.Crash();
  env.RecoverFromCrash();
  EXPECT_FALSE(env.FileExists("d/ephemeral"));
  auto kept = env.ReadFile("d/kept");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, "stay");
}

TEST(FaultEnvTest, RenameIsLiveImmediateButDurableOnlyAfterSyncDir) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/ckpt.tmp", "payload");
  ASSERT_TRUE(env.RenameFile("d/ckpt.tmp", "d/ckpt").ok());
  // Live namespace moved at once.
  EXPECT_FALSE(env.FileExists("d/ckpt.tmp"));
  EXPECT_TRUE(env.FileExists("d/ckpt"));
  // Without SyncDir the crash undoes the rename.
  env.Crash();
  env.RecoverFromCrash();
  EXPECT_TRUE(env.FileExists("d/ckpt.tmp"));
  EXPECT_FALSE(env.FileExists("d/ckpt"));

  // With SyncDir it sticks.
  ASSERT_TRUE(env.RenameFile("d/ckpt.tmp", "d/ckpt").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.Crash();
  env.RecoverFromCrash();
  EXPECT_FALSE(env.FileExists("d/ckpt.tmp"));
  EXPECT_TRUE(env.FileExists("d/ckpt"));
  auto contents = env.ReadFile("d/ckpt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
}

TEST(FaultEnvTest, RemoveIsDurableOnlyAfterSyncDir) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/old", "x");
  ASSERT_TRUE(env.RemoveFile("d/old").ok());
  EXPECT_FALSE(env.FileExists("d/old"));
  // Crash before SyncDir resurrects the file.
  env.Crash();
  env.RecoverFromCrash();
  EXPECT_TRUE(env.FileExists("d/old"));

  ASSERT_TRUE(env.RemoveFile("d/old").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.Crash();
  env.RecoverFromCrash();
  EXPECT_FALSE(env.FileExists("d/old"));
}

TEST(FaultEnvTest, TruncatedReopenKeepsOldContentDurableUntilSync) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/wal", "OLDOLD");
  auto file = env.NewTruncatedFile("d/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("N").ok());
  // Live: truncated + new byte. Durable: still the old content.
  auto live = env.ReadFile("d/wal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "N");
  env.Crash();
  env.RecoverFromCrash();
  auto durable = env.ReadFile("d/wal");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "OLDOLD");
}

TEST(FaultEnvTest, ShortWriteAppliesHalfThenFailsTransiently) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/wal", "");
  auto file = env.NewAppendableFile("d/wal");
  ASSERT_TRUE(file.ok());
  env.FailAt(1, FaultKind::kShortWrite);
  Status s = (*file)->Append("ABCDEFGH");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  auto live = env.ReadFile("d/wal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "ABCD");  // Half the bytes landed.
  // The failpoint is one-shot: the env is healthy again.
  EXPECT_FALSE(env.crashed());
  ASSERT_TRUE((*file)->Append("IJ").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  live = env.ReadFile("d/wal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "ABCDIJ");
}

TEST(FaultEnvTest, CrashTornAppendLeavesHalfInLiveView) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/wal", "SYNCED");
  auto file = env.NewAppendableFile("d/wal");
  ASSERT_TRUE(file.ok());
  env.FailAt(1, FaultKind::kCrashTorn);
  EXPECT_FALSE((*file)->Append("TORNTORN").ok());
  EXPECT_TRUE(env.crashed());
  env.RecoverFromCrash();
  // The torn half was never synced, so the durable view has the old bytes.
  auto durable = env.ReadFile("d/wal");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "SYNCED");
}

TEST(FaultEnvTest, CrashAfterSyncKeepsTheWholeWrite) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/wal", "");
  auto file = env.NewAppendableFile("d/wal");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("COMMIT").ok());
  env.FailAt(1, FaultKind::kCrashAfter);
  // The sync took effect before the crash: the caller saw an error, the disk
  // kept the bytes — the classic timed-out-commit ambiguity.
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE(env.crashed());
  env.RecoverFromCrash();
  auto durable = env.ReadFile("d/wal");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "COMMIT");
}

TEST(FaultEnvTest, FailpointIsOneShotAndCountsFromArming) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/f", "");
  auto file = env.NewAppendableFile("d/f");
  ASSERT_TRUE(file.ok());
  // Arm the second write-side syscall from now: op 1 passes, op 2 fails,
  // op 3 passes again.
  env.FailAt(2, FaultKind::kFail);
  EXPECT_TRUE((*file)->Append("1").ok());
  Status s = (*file)->Append("2");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_TRUE((*file)->Append("3").ok());
  auto live = env.ReadFile("d/f");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "13");  // The failed append applied nothing.
}

TEST(FaultEnvTest, ClearFaultDisarms) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/f", "");
  auto file = env.NewAppendableFile("d/f");
  ASSERT_TRUE(file.ok());
  env.FailAt(1, FaultKind::kCrashBefore);
  env.ClearFault();
  EXPECT_TRUE((*file)->Append("ok").ok());
  EXPECT_FALSE(env.crashed());
}

TEST(FaultEnvTest, OpCountAdvancesOnWriteSideSyscallsOnly) {
  FaultInjectionEnv env;
  uint64_t before = env.op_count();
  WriteDurable(&env, "d/f", "x");  // open + append + sync = 3 write-side ops.
  EXPECT_EQ(env.op_count(), before + 3);
  // Reads are not failpoints: the matrix enumerates write-side ops only.
  ASSERT_TRUE(env.ReadFile("d/f").ok());
  env.FileExists("d/f");
  ASSERT_TRUE(env.ListDir("d").ok());
  EXPECT_EQ(env.op_count(), before + 3);
}

TEST(FaultEnvTest, ListDirSeesOnlyDirectChildren) {
  FaultInjectionEnv env;
  WriteDurable(&env, "d/a", "1");
  WriteDurable(&env, "d/b", "2");
  WriteDurable(&env, "d/sub/c", "3");
  WriteDurable(&env, "other/e", "4");
  auto names = env.ListDir("d");
  ASSERT_TRUE(names.ok());
  std::sort(names->begin(), names->end());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace kbt::store
