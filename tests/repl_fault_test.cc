/// \file
/// Replication under fire. Three layers of injected failure, all
/// deterministic:
///
///   * FaultTransport over the replication link — every NetFaultKind
///     (drop/truncate/garbage/duplicate/delay) on both directions of the
///     wire, during steady-state streaming and during the subscribe
///     handshake. Invariant: the follower always converges and never
///     declares kLost over wire noise — kLost is reserved for real
///     divergence.
///   * FaultInjectionEnv crash matrices on both stores: every crash flavor
///     (before/after/torn) at every write-side syscall index of a fixed
///     workload, followed by recovery + reopen. Invariant: the pair
///     reconverges to bit-identical state (binary serialization equality).
///   * A kill/partition/failover chaos scenario: semi-sync acked commits
///     survive primary kill -9 + follower promotion; the deposed primary is
///     fenced on first contact with the new epoch; its divergent unacked
///     tail is discarded by a lineage-driven re-seed, never merged.
///
/// Followers are driven by PollOnce on the test thread (no pull threads), so
/// every run is a deterministic schedule.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/transport.h"
#include "rel/binary_io.h"
#include "repl/follower.h"
#include "repl/meta.h"
#include "repl/primary.h"
#include "serve/server.h"
#include "store/fault_env.h"
#include "store/wal.h"

namespace kbt::repl {
namespace {

Knowledgebase InitialKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 1}}, {{"P", {{"a"}}}});
}

std::string KbBytes(const Knowledgebase& kb) {
  return SerializeKnowledgebase(kb);
}

const char* KindName(net::NetFaultKind k) {
  switch (k) {
    case net::NetFaultKind::kDropConnection: return "drop";
    case net::NetFaultKind::kTruncate: return "truncate";
    case net::NetFaultKind::kGarbage: return "garbage";
    case net::NetFaultKind::kDuplicate: return "duplicate";
    case net::NetFaultKind::kDelay: return "delay";
  }
  return "?";
}

/// Primary + follower over fault-injection envs, linked by pipes whose
/// server ends are always FaultTransport-wrapped (so tests can corrupt either
/// wire direction of the live connection). The primary side can be torn down
/// and reopened from its env's durable view — the kill -9 + restart model.
class ChaosHarness {
 public:
  explicit ChaosHarness(PrimaryOptions popts = PrimaryOptions()) {
    OpenPrimary(popts);
  }

  ~ChaosHarness() {
    follower.reset();
    ClosePrimary();
  }

  void OpenPrimary(PrimaryOptions popts = PrimaryOptions()) {
    store::StoreOptions sopts;
    sopts.env = &penv_;
    auto server = serve::Server::OpenDurable("primary", InitialKb(), sopts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    pserver_ = std::move(*server);
    auto primary = Primary::Attach(pserver_.get(), popts);
    ASSERT_TRUE(primary.ok()) << primary.status().ToString();
    primary_ = std::move(*primary);
    net::NetServerOptions nopts;
    nopts.repl = primary_.get();
    net_ = std::make_unique<net::NetServer>(pserver_.get(), nopts);
  }

  /// Kills the serving side: closes every connection, joins the frame-loop
  /// threads, destroys net/primary/server. The env keeps the store bytes.
  void ClosePrimary() {
    for (auto& t : server_ends_) t->Shutdown();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    server_ends_.clear();
    threads_.clear();
    net_.reset();
    primary_.reset();
    pserver_.reset();
  }

  FollowerOptions MakeFollowerOptions(const std::string& dir) {
    FollowerOptions fopts;
    fopts.node_id = "replica";
    fopts.dir = dir;
    fopts.initial = InitialKb();
    fopts.store.env = &fenv_;
    fopts.connect = [this] { return Connect(); };
    fopts.poll_wait_ms = 0;
    fopts.sleep_on_backoff = false;
    return fopts;
  }

  void OpenFollower() {
    auto opened = Follower::Open(MakeFollowerOptions("replica"));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    follower = std::move(*opened);
  }

  /// Drives PollOnce until `lsn` is applied; every round must be survivable.
  void CatchUp(uint64_t lsn) {
    for (int i = 0; i < 500 && follower->applied_lsn() < lsn; ++i) {
      Status s = follower->PollOnce();
      ASSERT_TRUE(s.ok()) << s.ToString();
      ASSERT_NE(follower->state(), FollowerState::kLost);
    }
    ASSERT_EQ(follower->applied_lsn(), lsn);
  }

  StatusOr<std::unique_ptr<net::Transport>> Connect() {
    if (net_ == nullptr) {
      return Status::Unavailable("primary is down");
    }
    auto [client_end, server_end] = net::MakePipePair();
    auto fault = std::make_shared<net::FaultTransport>(std::move(server_end));
    if (arm_on_connect_armed_) {
      arm_on_connect_armed_ = false;
      fault->FailWriteAt(0, arm_on_connect_kind_);
    }
    server_ends_.push_back(fault);
    threads_.emplace_back([this, fault] { net_->ServeConnection(*fault); });
    return std::unique_ptr<net::Transport>(std::move(client_end));
  }

  /// The FaultTransport under the follower's pinned connection.
  net::FaultTransport& CurrentLink() { return *server_ends_.back(); }

  /// The next connection's first reply (the subscribe reply) gets `kind`.
  void ArmNextConnect(net::NetFaultKind kind) {
    arm_on_connect_armed_ = true;
    arm_on_connect_kind_ = kind;
  }

  serve::Server& pserver() { return *pserver_; }
  Primary& primary() { return *primary_; }
  store::FaultInjectionEnv& penv() { return penv_; }
  store::FaultInjectionEnv& fenv() { return fenv_; }
  bool primary_open() const { return net_ != nullptr; }

  std::unique_ptr<Follower> follower;

 private:
  store::FaultInjectionEnv penv_;
  store::FaultInjectionEnv fenv_;
  std::unique_ptr<serve::Server> pserver_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<net::NetServer> net_;
  std::vector<std::shared_ptr<net::FaultTransport>> server_ends_;
  std::vector<std::thread> threads_;
  bool arm_on_connect_armed_ = false;
  net::NetFaultKind arm_on_connect_kind_ = net::NetFaultKind::kDropConnection;
};

const net::NetFaultKind kAllKinds[] = {
    net::NetFaultKind::kDropConnection, net::NetFaultKind::kTruncate,
    net::NetFaultKind::kGarbage, net::NetFaultKind::kDuplicate,
    net::NetFaultKind::kDelay};

// --- The wire-fault matrix ---------------------------------------------------

TEST(ReplFaultTest, StreamingSurvivesEveryWireFaultInBothDirections) {
  enum class Dir { kRequest, kReply };  // Which direction the fault corrupts.
  for (Dir dir : {Dir::kRequest, Dir::kReply}) {
    for (net::NetFaultKind kind : kAllKinds) {
      SCOPED_TRACE(std::string(dir == Dir::kRequest ? "request" : "reply") +
                   " × " + KindName(kind));
      ChaosHarness h;
      ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());
      h.OpenFollower();
      h.CatchUp(1);

      // Corrupt the live link: the primary-side transport's next read is a
      // fetch request, its next write the corresponding reply. Keep a
      // reference to THIS link — a recovering follower redials a new one.
      net::FaultTransport& link = h.CurrentLink();
      if (dir == Dir::kRequest) {
        link.FailReadAt(0, kind, std::chrono::milliseconds(20));
      } else {
        link.FailWriteAt(0, kind, std::chrono::milliseconds(20));
      }

      ASSERT_TRUE(h.pserver().Apply("tau{Q(c)}").ok());
      h.CatchUp(2);

      // The fault actually fired (or this run validated nothing), the
      // follower never declared divergence, and state reconverged exactly.
      EXPECT_GE(link.faults_fired(), 1u);
      EXPECT_NE(h.follower->state(), FollowerState::kLost);
      EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
                KbBytes(h.pserver().store()->kb()));
    }
  }
}

TEST(ReplFaultTest, SubscribeHandshakeSurvivesEveryWireFault) {
  for (net::NetFaultKind kind : kAllKinds) {
    SCOPED_TRACE(KindName(kind));
    ChaosHarness h;
    ASSERT_TRUE(h.pserver().Apply("tau{P(b)}").ok());
    h.OpenFollower();
    h.CatchUp(1);

    // Force a reconnect, and make the NEXT connection's first reply — the
    // subscribe reply — arrive corrupted. The follower must back off and
    // heal on the connection after (clean), not declare divergence.
    h.ArmNextConnect(kind);
    h.CurrentLink().Shutdown();

    ASSERT_TRUE(h.pserver().Apply("tau{Q(c)}").ok());
    h.CatchUp(2);
    EXPECT_GE(h.follower->stats().resubscribes, 1u);
    EXPECT_NE(h.follower->state(), FollowerState::kLost);
    EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
              KbBytes(h.pserver().store()->kb()));
  }
}

// --- Crash matrices ----------------------------------------------------------

const store::FaultKind kCrashKinds[] = {store::FaultKind::kCrashBefore,
                                        store::FaultKind::kCrashAfter,
                                        store::FaultKind::kCrashTorn};

const char* CrashName(store::FaultKind k) {
  switch (k) {
    case store::FaultKind::kCrashBefore: return "crash-before";
    case store::FaultKind::kCrashAfter: return "crash-after";
    case store::FaultKind::kCrashTorn: return "crash-torn";
    default: return "?";
  }
}

TEST(ReplFaultTest, FollowerCrashMatrixReconvergesBitIdentical) {
  // For every crash flavor, at every write-side syscall of the follower's
  // life (seed install, WAL appends, syncs, meta writes): crash there,
  // restart from the durable view, reconverge. The sweep ends at the first
  // index the workload never reaches.
  for (store::FaultKind kind : kCrashKinds) {
    for (uint64_t op = 1;; ++op) {
      SCOPED_TRACE(std::string(CrashName(kind)) + " @ op " +
                   std::to_string(op));
      ASSERT_LT(op, 200u) << "sweep did not terminate";
      ChaosHarness h;
      for (const char* e : {"tau{P(b)}", "tau{Q(c)}", "tau{P(d)}"}) {
        ASSERT_TRUE(h.pserver().Apply(e).ok());
      }

      h.fenv().FailAt(op, kind);
      auto opened = Follower::Open(h.MakeFollowerOptions("replica"));
      if (opened.ok()) {
        h.follower = std::move(*opened);
        for (int i = 0; i < 200 && h.follower->applied_lsn() < 3; ++i) {
          if (!h.follower->PollOnce().ok()) break;
        }
      }

      if (!h.fenv().crashed()) {
        // The armed op lies beyond the whole workload: the clean run must
        // have fully converged, and the sweep is complete for this flavor.
        h.fenv().ClearFault();
        ASSERT_TRUE(h.follower != nullptr);
        ASSERT_EQ(h.follower->applied_lsn(), 3u);
        break;
      }

      // kill -9 at op `op` → remount the durable view → a fresh Follower
      // over the same directory must reconverge, whatever survived.
      h.follower.reset();
      h.fenv().RecoverFromCrash();
      h.OpenFollower();
      h.CatchUp(3);
      EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
                KbBytes(h.pserver().store()->kb()));
    }
  }
}

TEST(ReplFaultTest, PrimaryCrashMatrixReconvergesBitIdentical) {
  // Crash the PRIMARY's store mid-workload instead: the follower must ride
  // out the outage (its connection dies with the primary) and converge with
  // whatever acknowledged prefix recovery lands on — never ahead of it.
  for (store::FaultKind kind : kCrashKinds) {
    for (uint64_t op = 1;; ++op) {
      SCOPED_TRACE(std::string(CrashName(kind)) + " @ op " +
                   std::to_string(op));
      ASSERT_LT(op, 200u) << "sweep did not terminate";
      ChaosHarness h;
      h.OpenFollower();
      h.CatchUp(0);

      h.penv().FailAt(op, kind);
      for (const char* e : {"tau{P(b)}", "tau{Q(c)}", "tau{P(d)}"}) {
        auto v = h.pserver().Apply(e);
        if (!v.ok()) break;  // The crash ate this commit's acknowledgment.
      }

      if (!h.penv().crashed()) {
        h.penv().ClearFault();
        h.CatchUp(3);
        EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
                  KbBytes(h.pserver().store()->kb()));
        break;
      }

      // kill -9 the primary, restart it from the durable view. The follower
      // reconnects and fetches whatever lsn recovery reached; a follower
      // AHEAD of the recovered primary would be refused as divergent — this
      // sweep also proves that cannot happen (records ship only after their
      // commit is durable).
      h.ClosePrimary();
      h.penv().RecoverFromCrash();
      h.OpenPrimary();
      uint64_t recovered = h.pserver().store()->lsn();
      h.CatchUp(recovered);
      EXPECT_NE(h.follower->state(), FollowerState::kLost);
      EXPECT_EQ(KbBytes(h.follower->server()->store()->kb()),
                KbBytes(h.pserver().store()->kb()));
    }
  }
}

// --- Kill + failover chaos ---------------------------------------------------

TEST(ReplFaultTest, SemiSyncAckedCommitsSurviveKillAndPromotion) {
  PrimaryOptions popts;
  popts.semi_sync = true;
  popts.semi_sync_timeout_ms = 100;
  ChaosHarness h(popts);
  h.OpenFollower();

  // Two semi-sync commits, each acknowledged only after the follower's ack.
  for (int i = 1; i <= 2; ++i) {
    StatusOr<uint64_t> version = 0;
    std::string expr = i == 1 ? "tau{P(b)}" : "tau{Q(c)}";
    std::thread applier([&] { version = h.pserver().Apply(expr); });
    for (int r = 0;
         r < 500 && h.primary().stats().min_acked_lsn < uint64_t(i); ++r) {
      ASSERT_TRUE(h.follower->PollOnce().ok());
    }
    applier.join();
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }

  // A third commit no replica acks: durable on the primary only, surfaced as
  // the typed "unreplicated" timeout — the caller knows its durability class.
  auto unreplicated = h.pserver().Apply("tau{P(lost)}");
  ASSERT_FALSE(unreplicated.ok());
  EXPECT_EQ(unreplicated.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(h.pserver().store()->lsn(), 3u);

  // kill -9 the primary.
  h.penv().Crash();
  h.ClosePrimary();

  // Fail over: promote the follower. Every semi-sync-ACKED commit is there.
  auto epoch = h.follower->Promote();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);
  ASSERT_EQ(h.follower->applied_lsn(), 2u);
  {
    auto session = h.follower->server()->StartSession();
    EXPECT_TRUE((*session->Holds("P(b)")).holds);
    EXPECT_TRUE((*session->Holds("Q(c)")).holds);
    EXPECT_FALSE((*session->Holds("P(lost)")).holds);  // Unacked: not owed.
  }

  // The new primary commits its own lsn 3 — same position as the dead
  // primary's unacked tail, different contents. The lineages have forked.
  ASSERT_TRUE(h.follower->server()->Apply("tau{Q(post)}").ok());

  // Serve the new epoch: attach a Primary to the promoted server. It reads
  // the promoted lineage {(1,0),(2,2)} from the store's replmeta.
  auto primary_b = Primary::Attach(h.follower->server(), PrimaryOptions());
  ASSERT_TRUE(primary_b.ok()) << primary_b.status().ToString();
  EXPECT_EQ((*primary_b)->epoch(), 2u);
  net::NetServerOptions nopts_b;
  nopts_b.repl = primary_b->get();
  net::NetServer net_b(h.follower->server(), nopts_b);
  std::vector<std::shared_ptr<net::Transport>> b_ends;
  std::vector<std::thread> b_threads;
  auto connect_b = [&]() -> StatusOr<std::unique_ptr<net::Transport>> {
    auto [client_end, server_end] = net::MakePipePair();
    std::shared_ptr<net::Transport> shared = std::move(server_end);
    b_ends.push_back(shared);
    b_threads.emplace_back([&net_b, shared] { net_b.ServeConnection(*shared); });
    return std::unique_ptr<net::Transport>(std::move(client_end));
  };

  // The dead primary's machine comes back. First as a primary: one contact
  // from the new epoch fences it before it can take a single write.
  h.penv().RecoverFromCrash();
  h.OpenPrimary();
  ASSERT_EQ(h.pserver().store()->lsn(), 3u);  // Its divergent tail survived.
  net::WireReplSubscribe from_b;
  from_b.follower_id = "beta";
  from_b.epoch = 2;
  from_b.start_lsn = 2;
  from_b.has_state = 1;
  auto refused = h.primary().HandleSubscribe(from_b);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFenced);
  EXPECT_TRUE(h.primary().fenced());
  EXPECT_EQ(h.pserver().Apply("tau{P(never)}").status().code(),
            StatusCode::kReadOnly);
  h.ClosePrimary();

  // Then as a follower of the new primary. Its log (epoch 1, lsn 3) crosses
  // the fork at lsn 2: the lineage check demands a re-seed, and the
  // divergent record is discarded — never merged, never "caught up" across.
  FollowerOptions a_opts;
  a_opts.node_id = "old-primary";
  a_opts.dir = "primary";
  a_opts.initial = InitialKb();
  a_opts.store.env = &h.penv();
  a_opts.connect = connect_b;
  a_opts.poll_wait_ms = 0;
  a_opts.sleep_on_backoff = false;
  auto reborn = Follower::Open(std::move(a_opts));
  ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
  for (int i = 0; i < 500 && (*reborn)->applied_lsn() < 3; ++i) {
    ASSERT_TRUE((*reborn)->PollOnce().ok());
  }
  EXPECT_EQ((*reborn)->applied_lsn(), 3u);
  EXPECT_EQ((*reborn)->epoch(), 2u);
  EXPECT_EQ((*reborn)->stats().snapshot_installs, 1u);
  {
    auto session = (*reborn)->server()->StartSession();
    EXPECT_FALSE((*session->Holds("P(lost)")).holds);  // Divergence gone.
    EXPECT_TRUE((*session->Holds("Q(post)")).holds);   // New lineage adopted.
  }
  EXPECT_EQ(KbBytes((*reborn)->server()->store()->kb()),
            KbBytes(h.follower->server()->store()->kb()));

  reborn->reset();
  for (auto& t : b_ends) t->Shutdown();
  for (std::thread& t : b_threads) t.join();
}

// --- Stale-epoch batches at the follower ------------------------------------

/// A scripted primary: hands out epoch 2, then serves one batch stamped with
/// the DEPOSED epoch 1 — a dead primary's parting shot arriving late.
class StaleBatchPrimary : public net::ReplHandler {
 public:
  StatusOr<net::WireReplSubscribeReply> HandleSubscribe(
      const net::WireReplSubscribe& sub) override {
    (void)sub;
    net::WireReplSubscribeReply reply;
    reply.primary_id = "scripted";
    reply.epoch = 2;
    reply.primary_lsn = 1;
    reply.horizon_lsn = 0;
    reply.need_snapshot = 0;
    reply.epoch_history = {{1, 0}, {2, 0}};
    return reply;
  }

  StatusOr<net::WireReplRecords> HandleFetch(
      const net::WireReplFetch& fetch, const CancelToken* cancel) override {
    (void)cancel;
    net::WireReplRecords reply;
    reply.start_lsn = fetch.after_lsn + 1;
    reply.primary_lsn = 1;
    if (++fetches_ == 1) {
      reply.epoch = 1;  // Stale: the follower adopted epoch 2 at subscribe.
      reply.records.emplace_back(
          uint8_t(store::WalRecordKind::kTransform), "tau{P(stale)}");
    } else {
      reply.epoch = 2;  // Subsequent batches are honest (and empty).
    }
    return reply;
  }

  StatusOr<net::WireReplCkptChunk> HandleCkptFetch(
      const net::WireReplCkptFetch& fetch) override {
    (void)fetch;
    return Status::NotFound("scripted primary has no checkpoints");
  }

  int fetches_ = 0;
};

TEST(ReplFaultTest, StaleEpochBatchIsRefusedUnapplied) {
  serve::Server front(InitialKb());
  StaleBatchPrimary scripted;
  net::NetServerOptions nopts;
  nopts.repl = &scripted;
  net::NetServer net(&front, nopts);
  std::vector<std::shared_ptr<net::Transport>> ends;
  std::vector<std::thread> threads;

  store::FaultInjectionEnv fenv;
  {
    // Give the follower pre-existing state (checkpoint-0, lsn 0): a FRESH
    // follower insists on a checkpoint seed, which the scripted primary
    // doesn't offer — this test is about the streaming epoch check.
    store::StoreOptions sopts;
    sopts.env = &fenv;
    auto seeded = serve::Server::OpenDurable("replica", InitialKb(), sopts);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  }
  FollowerOptions fopts;
  fopts.node_id = "replica";
  fopts.dir = "replica";
  fopts.initial = InitialKb();
  fopts.store.env = &fenv;
  fopts.poll_wait_ms = 0;
  fopts.sleep_on_backoff = false;
  fopts.connect = [&]() -> StatusOr<std::unique_ptr<net::Transport>> {
    auto [client_end, server_end] = net::MakePipePair();
    std::shared_ptr<net::Transport> shared = std::move(server_end);
    ends.push_back(shared);
    threads.emplace_back([&net, shared] { net.ServeConnection(*shared); });
    return std::unique_ptr<net::Transport>(std::move(client_end));
  };

  auto follower = Follower::Open(std::move(fopts));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  EXPECT_EQ((*follower)->epoch(), 2u);

  // Drive until the stale batch has been seen and refused.
  for (int i = 0; i < 50 && (*follower)->stats().stale_batches_refused < 1;
       ++i) {
    ASSERT_TRUE((*follower)->PollOnce().ok());
  }
  EXPECT_EQ((*follower)->stats().stale_batches_refused, 1u);
  EXPECT_EQ((*follower)->stats().records_applied, 0u);
  EXPECT_EQ((*follower)->applied_lsn(), 0u);
  EXPECT_NE((*follower)->state(), FollowerState::kLost);
  {
    auto session = (*follower)->server()->StartSession();
    EXPECT_FALSE((*session->Holds("P(stale)")).holds);
  }

  follower->reset();
  for (auto& t : ends) t->Shutdown();
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace kbt::repl
