#include "serve/server.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/hypothetical.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "serve/cache_bank.h"
#include "serve/snapshot.h"
#include "logic/grounder.h"
#include "store/fault_env.h"
#include "store/file.h"
#include "store/recovery.h"
#include "testutil.h"

namespace kbt::serve {
namespace {

Knowledgebase SmallKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 2}},
                          {{"P", {{"a"}}}, {"Q", {{"a", "b"}}}});
}

// ---------------------------------------------------------------------------
// SnapshotRegistry

TEST(SnapshotRegistryTest, InitialStateIsVersionZero) {
  SnapshotRegistry registry(SmallKb());
  std::shared_ptr<const Snapshot> snap = registry.Current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  EXPECT_EQ(snap->kb, SmallKb());
  EXPECT_EQ(registry.version(), 0u);
}

TEST(SnapshotRegistryTest, PublishAdvancesVersionAndKeepsOldAlive) {
  SnapshotRegistry registry(SmallKb());
  std::shared_ptr<const Snapshot> v0 = registry.Current();

  Knowledgebase next = *MakeSingletonKb({{"P", 1}}, {{"P", {{"b"}}}});
  std::shared_ptr<const Snapshot> v1 = registry.Publish(next);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(registry.Current()->version, 1u);
  EXPECT_EQ(registry.Current()->kb, next);

  // The superseded snapshot is unchanged for readers still holding it.
  EXPECT_EQ(v0->version, 0u);
  EXPECT_EQ(v0->kb, SmallKb());
}

// ---------------------------------------------------------------------------
// QueryCacheBank

TEST(QueryCacheBankTest, TextualVariantsOfOneSentenceShareAnEntry) {
  QueryCacheBank bank(8);
  auto a = bank.Get("P(a)&Q(a,b)");
  ASSERT_TRUE(a.ok());
  auto b = bank.Get("P(a)  &  Q(a, b)");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(bank.entries(), 1u);
  EXPECT_EQ(bank.hits(), 1u);
  EXPECT_EQ(bank.misses(), 1u);
  // The entry's canonical formula is what borrowers evaluate.
  ASSERT_NE((*a)->sentence, nullptr);
}

TEST(QueryCacheBankTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  QueryCacheBank bank(2);
  ASSERT_TRUE(bank.Get("P(a)").ok());
  ASSERT_TRUE(bank.Get("P(b)").ok());
  ASSERT_TRUE(bank.Get("P(a)").ok());  // P(a) is now hottest.
  ASSERT_TRUE(bank.Get("P(c)").ok());  // Evicts P(b).
  EXPECT_EQ(bank.entries(), 2u);
  uint64_t misses_before = bank.misses();
  ASSERT_TRUE(bank.Get("P(b)").ok());  // Re-resolved: a miss (evicts P(a)).
  EXPECT_EQ(bank.misses(), misses_before + 1);
  uint64_t hits_before = bank.hits();
  ASSERT_TRUE(bank.Get("P(c)").ok());  // Still resident: a hit.
  EXPECT_EQ(bank.hits(), hits_before + 1);
}

TEST(QueryCacheBankTest, EvictedEntryStaysValidForHolders) {
  QueryCacheBank bank(1);
  auto held = bank.Get("P(a) | Q(a, a)");
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(bank.Get("P(b)").ok());  // Evicts the held entry from the bank.
  EXPECT_EQ(bank.entries(), 1u);
  // The shared_ptr keeps the entry (and its formula) alive.
  EXPECT_EQ(ToString((*held)->sentence), ToString(*ParseSentence("P(a)|Q(a,a)")));
}

TEST(QueryCacheBankTest, ParseErrorsPropagate) {
  QueryCacheBank bank(4);
  EXPECT_FALSE(bank.Get("P(a").ok());
  EXPECT_FALSE(bank.Get("P(a) &").ok());
  // (No free-variable case: an unbound identifier in term position names a
  // constant in this syntax, so any well-formed formula here is a sentence.)
  EXPECT_EQ(bank.entries(), 0u);
}

TEST(QueryCacheBankTest, DomainCapBoundsPerSentenceGrowthUnderChurn) {
  // Rotating active domains — the shape a domain-churning workload produces:
  // every commit adds a constant, so every read is a fresh domain key. With
  // entry_max_domains = 2 the per-sentence grounding cache must stay at ≤ 2
  // entries no matter how many distinct domains pass through, and an evicted
  // domain must recompute to an identical grounding.
  QueryCacheBank bank(4, /*entry_byte_budget=*/0, /*entry_max_domains=*/2);
  auto entry = bank.Get("P(a)");
  ASSERT_TRUE(entry.ok());
  GrounderOptions gopts;

  std::vector<Value> first_domain = {Name("a")};
  auto first = (*entry)->ground.GetOrGround((*entry)->sentence, first_domain,
                                            gopts);
  ASSERT_TRUE(first.ok());
  const size_t first_circuit = (*first)->grounding.circuit.size();

  for (int i = 0; i < 10; ++i) {
    std::vector<Value> domain = {Name("a")};
    for (int j = 0; j <= i; ++j) {
      domain.push_back(Name("c" + std::to_string(j)));
    }
    auto g = (*entry)->ground.GetOrGround((*entry)->sentence, domain, gopts);
    ASSERT_TRUE(g.ok()) << g.status().message();
    EXPECT_LE((*entry)->ground.entries(), 2u) << "round " << i;
  }
  EXPECT_GE((*entry)->ground.stats().evictions, 8u);

  // The first domain was evicted long ago; recomputing it yields the same
  // grounding shape.
  auto again = (*entry)->ground.GetOrGround((*entry)->sentence, first_domain,
                                            gopts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->grounding.circuit.size(), first_circuit);
}

// ---------------------------------------------------------------------------
// Server: write path and snapshots

TEST(ServeServerTest, ApplyPublishesMonotoneVersions) {
  Server server(SmallKb());
  EXPECT_EQ(server.CurrentSnapshot()->version, 0u);

  auto v1 = server.Apply("tau{P(b)}");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  auto v2 = server.Apply("tau{Q(b, c)}");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(server.CurrentSnapshot()->version, 2u);
  EXPECT_EQ(server.stats().commits, 2u);
}

TEST(ServeServerTest, FailedApplyPublishesNothing) {
  Server server(SmallKb());
  std::shared_ptr<const Snapshot> before = server.CurrentSnapshot();
  EXPECT_FALSE(server.Apply("tau{P(").ok());
  EXPECT_EQ(server.CurrentSnapshot().get(), before.get());
  EXPECT_EQ(server.stats().commits, 0u);
}

TEST(ServeServerTest, PipelineApplyMatchesTextApply) {
  Server text_server(SmallKb());
  Server pipe_server(SmallKb());
  ASSERT_TRUE(text_server.Apply("tau{P(b) | Q(b, b)} >> glb").ok());
  Pipeline pipeline;
  pipeline.Tau("P(b) | Q(b, b)").Glb();
  ASSERT_TRUE(pipe_server.Apply(pipeline).ok());
  EXPECT_EQ(text_server.CurrentSnapshot()->kb, pipe_server.CurrentSnapshot()->kb);
}

// ---------------------------------------------------------------------------
// Server: read path

TEST(ServeServerTest, ModalAndCounterfactualReadsMatchCoreSemantics) {
  Server server(SmallKb());
  std::unique_ptr<Session> session = server.StartSession();

  auto modal = session->Holds("P(a)");
  ASSERT_TRUE(modal.ok());
  EXPECT_TRUE(modal->holds);
  EXPECT_EQ(modal->snapshot_version, 0u);

  ReadRequest request;
  request.antecedents = {"P(c)", "Q(c, c)"};
  request.consequent = "P(c) & Q(c, c)";
  request.modality = Modality::kNecessarily;
  auto counterfactual = session->Query(request);
  ASSERT_TRUE(counterfactual.ok());
  EXPECT_TRUE(counterfactual->holds);

  // The snapshot itself was never modified by the hypothetical chain.
  EXPECT_EQ(server.CurrentSnapshot()->kb, SmallKb());
  EXPECT_EQ(server.stats().reads, 2u);
}

TEST(ServeServerTest, ReadsSeeTheVersionTheyAcquired) {
  Server server(SmallKb());
  std::unique_ptr<Session> session = server.StartSession();
  ASSERT_TRUE(server.Apply("tau{P(d)}").ok());
  auto read = session->Holds("P(d)");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->holds);
  EXPECT_EQ(read->snapshot_version, 1u);
}

/// Property: the served read path (cache bank + pinned solver/scratch +
/// NestedCounterfactualExec) answers exactly like the plain core evaluation on
/// the same snapshot — across random kbs, random chains, repeated sentences
/// (cache hits), both modalities, and interleaved writes.
TEST(ServeServerTest, ServedReadsEquivalentToPlainNestedCounterfactual) {
  std::mt19937_64 rng(20260808);
  testutil::RandomSentenceGenerator gen(&rng);
  std::uniform_int_distribution<int> chain_len(0, 2);
  std::bernoulli_distribution coin(0.5);

  for (int round = 0; round < 30; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    Server server(kb);
    std::unique_ptr<Session> session = server.StartSession();
    for (int q = 0; q < 4; ++q) {
      std::vector<Formula> antecedents;
      ReadRequest request;
      int len = chain_len(rng);
      for (int i = 0; i < len; ++i) {
        Formula f = gen.Generate(2);
        antecedents.push_back(f);
        request.antecedents.push_back(ToString(f));
      }
      Formula consequent = gen.Generate(2);
      request.consequent = ToString(consequent);
      request.modality =
          coin(rng) ? Modality::kNecessarily : Modality::kPossibly;

      auto expected = NestedCounterfactual(kb, antecedents, consequent,
                                           request.modality);
      ASSERT_TRUE(expected.ok()) << expected.status().message();
      auto served = session->Query(request);
      ASSERT_TRUE(served.ok()) << served.status().message();
      EXPECT_EQ(served->holds, *expected)
          << "round " << round << " query " << q << ": chain of " << len
          << " onto " << request.consequent;
    }
  }
}

/// Same property with the bank disabled (the no-batch baseline path).
TEST(ServeServerTest, NoBankReadsEquivalentToPlainNestedCounterfactual) {
  std::mt19937_64 rng(808);
  testutil::RandomSentenceGenerator gen(&rng);
  ServerOptions options;
  options.use_cache_bank = false;

  for (int round = 0; round < 10; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    Server server(kb, options);
    std::unique_ptr<Session> session = server.StartSession();
    Formula antecedent = gen.Generate(2);
    Formula consequent = gen.Generate(2);
    ReadRequest request;
    request.antecedents = {ToString(antecedent)};
    request.consequent = ToString(consequent);
    auto expected =
        NestedCounterfactual(kb, {antecedent}, consequent, request.modality);
    ASSERT_TRUE(expected.ok());
    auto served = session->Query(request);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served->holds, *expected);
  }
}

TEST(ServeServerTest, RepeatedSentencesHitTheBank) {
  Server server(SmallKb());
  std::unique_ptr<Session> session = server.StartSession();
  ReadRequest request;
  request.antecedents = {"P(b)"};
  request.consequent = "P(b)";
  for (int i = 0; i < 3; ++i) {
    auto result = session->Query(request);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->holds);
  }
  Server::ServerStats stats = server.stats();
  EXPECT_EQ(stats.bank_misses, 1u);  // One resolve for P(b)...
  EXPECT_EQ(stats.bank_hits, 2u);    // ...then hits.
}

TEST(ServeServerTest, ByteBudgetEvictsSentenceEntriesUnderDomainChurn) {
  // Domain-churn workload against a 1-byte entry budget: every read outgrows
  // the budget, so the bank must keep evicting and rebuilding instead of
  // accumulating one grounding per domain forever — and every answer must
  // match an unbounded twin serving the identical workload.
  ServerOptions bounded_options;
  bounded_options.cache_entry_byte_budget = 1;
  Server bounded(SmallKb(), bounded_options);
  Server unbounded(SmallKb());
  std::unique_ptr<Session> bounded_session = bounded.StartSession();
  std::unique_ptr<Session> unbounded_session = unbounded.StartSession();

  for (int i = 0; i < 8; ++i) {
    const std::string apply = "tau{P(c" + std::to_string(i) + ")}";
    ASSERT_TRUE(bounded.Apply(apply).ok());
    ASSERT_TRUE(unbounded.Apply(apply).ok());
    for (const char* sentence :
         {"exists x: P(x)", "forall x: Q(x, x) -> P(x)"}) {
      ReadRequest request;
      request.antecedents = {"Q(b, b)"};
      request.consequent = sentence;
      auto b = bounded_session->Query(request);
      auto u = unbounded_session->Query(request);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_TRUE(u.ok()) << u.status().ToString();
      EXPECT_EQ(b->holds, u->holds) << "round " << i << ": " << sentence;
    }
  }
  EXPECT_GT(bounded.stats().bank_budget_evictions, 0u);
  EXPECT_EQ(unbounded.stats().bank_budget_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Batching

TEST(ServeServerTest, BatchedResultsIdenticalToOneAtATime) {
  std::mt19937_64 rng(4242);
  testutil::RandomSentenceGenerator gen(&rng);

  for (int round = 0; round < 8; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    // The batch deliberately repeats chains so grouping has something to merge.
    std::vector<ReadRequest> requests;
    for (int i = 0; i < 3; ++i) {
      ReadRequest request;
      request.antecedents = {ToString(gen.Generate(2))};
      request.consequent = ToString(gen.Generate(2));
      requests.push_back(request);
      requests.push_back(request);  // Duplicate: same group.
      std::swap(requests[requests.size() / 2], requests.back());
    }

    Server batch_server(kb);
    std::unique_ptr<Session> batch_session = batch_server.StartSession();
    auto batched = batch_server.ExecuteBatch(*batch_session, requests);
    ASSERT_TRUE(batched.ok()) << batched.status().message();
    ASSERT_EQ(batched->size(), requests.size());

    Server serial_server(kb);
    std::unique_ptr<Session> serial_session = serial_server.StartSession();
    for (size_t i = 0; i < requests.size(); ++i) {
      auto expected = serial_session->Query(requests[i]);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ((*batched)[i].holds, expected->holds) << "request " << i;
      EXPECT_EQ((*batched)[i].snapshot_version, 0u);
    }
    EXPECT_EQ(batch_server.stats().batches, 1u);
  }
}

TEST(ServeServerTest, BatchEvaluatesAgainstOneSnapshot) {
  Server server(SmallKb());
  std::unique_ptr<Session> session = server.StartSession();
  ASSERT_TRUE(server.Apply("tau{P(b)}").ok());
  std::vector<ReadRequest> requests(3);
  requests[0].consequent = "P(a)";
  requests[1].consequent = "P(b)";
  requests[2].consequent = "P(c)";
  auto results = server.ExecuteBatch(*session, requests);
  ASSERT_TRUE(results.ok());
  for (const ReadResult& r : *results) EXPECT_EQ(r.snapshot_version, 1u);
  EXPECT_TRUE((*results)[0].holds);
  EXPECT_TRUE((*results)[1].holds);
  EXPECT_FALSE((*results)[2].holds);
}

// ---------------------------------------------------------------------------
// Durable serving

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  if (store::Env::Default()->FileExists(dir)) {
    auto names = store::Env::Default()->ListDir(dir);
    if (names.ok()) {
      for (const std::string& n : *names) {
        Status ignored = store::Env::Default()->RemoveFile(dir + "/" + n);
        (void)ignored;
      }
    }
  }
  return dir;
}

TEST(ServeServerTest, DurableServerSurvivesReopen) {
  const std::string dir = FreshDir("kbt_serve_test_reopen");
  Knowledgebase committed{Schema()};
  {
    auto server = Server::OpenDurable(dir, SmallKb());
    ASSERT_TRUE(server.ok()) << server.status().message();
    ASSERT_TRUE((*server)->Apply("tau{P(b)}").ok());
    ASSERT_TRUE((*server)->Apply("tau{Q(b, c) | Q(c, b)}").ok());
    committed = (*server)->CurrentSnapshot()->kb;
    EXPECT_EQ((*server)->store()->lsn(), 2u);
  }
  // Reopen: recovered state is version 0 and `initial` is ignored.
  auto server = Server::OpenDurable(dir, Knowledgebase(Schema()));
  ASSERT_TRUE(server.ok()) << server.status().message();
  EXPECT_EQ((*server)->CurrentSnapshot()->version, 0u);
  EXPECT_EQ((*server)->CurrentSnapshot()->kb, committed);

  // And serves reads over the recovered state.
  std::unique_ptr<Session> session = (*server)->StartSession();
  auto read = session->Holds("P(b)");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->holds);
}

TEST(ServeServerTest, AutoCheckpointRotatesEveryNCommits) {
  const std::string dir = FreshDir("kbt_serve_test_autockpt");
  ServerOptions options;
  options.checkpoint_every = 2;
  auto server =
      Server::OpenDurable(dir, SmallKb(), store::StoreOptions(), options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*server)->Apply("tau{P(b)}").ok());
  }
  // Two checkpoints happened; the newest is at lsn 4, so wal-4 exists and the
  // original wal-0 was garbage-collected.
  EXPECT_TRUE(
      store::Env::Default()->FileExists(dir + "/" + store::WalFileName(4)));
  EXPECT_FALSE(
      store::Env::Default()->FileExists(dir + "/" + store::WalFileName(0)));
  EXPECT_EQ((*server)->CurrentSnapshot()->version, 4u);
}

TEST(ServeServerTest, FailedDurableCommitLeavesSnapshotUnchanged) {
  // When the WAL write under Apply fails, the error must surface BEFORE
  // Publish: readers keep the old snapshot, the commit counter does not
  // move, and the next Apply succeeds with a contiguous version number
  // (the store self-heals the torn record).
  store::FaultInjectionEnv env;
  store::StoreOptions store_options;
  store_options.env = &env;
  auto server = Server::OpenDurable("db", SmallKb(), store_options);
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_TRUE((*server)->Apply("tau{P(b)}").ok());
  const Knowledgebase before = (*server)->CurrentSnapshot()->kb;
  const uint64_t version_before = (*server)->CurrentSnapshot()->version;
  const uint64_t commits_before = (*server)->stats().commits;
  const uint64_t lsn_before = (*server)->store()->lsn();

  env.FailAt(1, store::FaultKind::kFail);  // Next write-side syscall fails.
  auto failed = (*server)->Apply("tau{P(c)}");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError)
      << failed.status().ToString();

  EXPECT_EQ((*server)->CurrentSnapshot()->version, version_before);
  EXPECT_EQ((*server)->CurrentSnapshot()->kb, before);
  EXPECT_EQ((*server)->stats().commits, commits_before);
  EXPECT_EQ((*server)->store()->lsn(), lsn_before);

  // The transient fault is gone; the write path must be fully recovered.
  auto retried = (*server)->Apply("tau{P(c)}");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, version_before + 1);
  EXPECT_EQ((*server)->store()->lsn(), lsn_before + 1);
  std::unique_ptr<Session> session = (*server)->StartSession();
  auto read = session->Holds("P(c)");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->holds);
}

TEST(ServeServerTest, DurablePipelineApplyIsReplayed) {
  const std::string dir = FreshDir("kbt_serve_test_pipeline");
  Knowledgebase committed{Schema()};
  {
    auto server = Server::OpenDurable(dir, SmallKb());
    ASSERT_TRUE(server.ok());
    Pipeline pipeline;
    pipeline.Tau("P(b) | P(c)").Glb();
    ASSERT_TRUE((*server)->Apply(pipeline).ok());
    committed = (*server)->CurrentSnapshot()->kb;
  }
  auto server = Server::OpenDurable(dir, Knowledgebase(Schema()));
  ASSERT_TRUE(server.ok()) << server.status().message();
  EXPECT_EQ((*server)->CurrentSnapshot()->kb, committed);
}

}  // namespace
}  // namespace kbt::serve
