/// \file
/// Concurrency stress for the serving layer, written to run under TSan (the
/// CI tsan job includes this suite): N reader threads issue hypothetical
/// queries through pinned sessions while one writer publishes updates and
/// rotates durable checkpoints. Verified afterwards:
///
///   * every recorded (version, request, answer) triple is bit-identical to a
///     serial recompute on the retained snapshot of that version — reads are
///     consistent with exactly one published state, never a torn mix;
///   * readers made progress while the writer was parked mid-"transformation"
///     holding the write lock — the MVCC non-blocking claim, observed rather
///     than asserted from the design.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hypothetical.h"
#include "logic/parser.h"
#include "serve/server.h"
#include "store/file.h"
#include "testutil.h"

namespace kbt::serve {
namespace {

Knowledgebase StressKb() {
  return *MakeSingletonKb({{"P", 1}, {"Q", 2}},
                          {{"P", {{"a"}}}, {"Q", {{"a", "b"}}}});
}

/// The fixed read pool. Recurring sentences make the cache bank's sharing the
/// hot path, which is exactly what TSan should be staring at.
std::vector<ReadRequest> StressReadPool() {
  std::vector<ReadRequest> pool;
  auto add = [&pool](std::vector<std::string> ants, std::string cons,
                     Modality m) {
    ReadRequest r;
    r.antecedents = std::move(ants);
    r.consequent = std::move(cons);
    r.modality = m;
    pool.push_back(std::move(r));
  };
  add({}, "P(a)", Modality::kNecessarily);
  add({}, "P(w1)", Modality::kPossibly);
  add({"P(c)"}, "P(c)", Modality::kNecessarily);
  add({"Q(c, c)"}, "P(a) & Q(c, c)", Modality::kPossibly);
  add({"P(b)", "Q(b, b)"}, "Q(b, b)", Modality::kNecessarily);
  return pool;
}

struct RecordedRead {
  uint64_t version = 0;
  size_t request = 0;  ///< Index into the pool.
  bool holds = false;
};

TEST(ServeStressTest, ConcurrentReadersStayConsistentAcrossPublishes) {
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 40;
  constexpr int kWrites = 12;

  Server server(StressKb());
  const std::vector<ReadRequest> pool = StressReadPool();

  // The writer retains every snapshot it publishes (plus v0) so the serial
  // recompute below can rerun any recorded read on its exact state.
  std::mutex snapshots_mu;
  std::map<uint64_t, std::shared_ptr<const Snapshot>> snapshots;
  snapshots[0] = server.CurrentSnapshot();

  std::vector<std::vector<RecordedRead>> recorded(kReaders);

  auto reader = [&](int t) {
    std::unique_ptr<Session> session = server.StartSession();
    std::vector<RecordedRead>& out = recorded[t];
    out.reserve(kReadsPerReader);
    for (int i = 0; i < kReadsPerReader; ++i) {
      size_t which = (t * 7 + i) % pool.size();
      auto result = session->Query(pool[which]);
      ASSERT_TRUE(result.ok()) << result.status().message();
      out.push_back({result->snapshot_version, which, result->holds});
    }
  };

  auto writer = [&] {
    for (int i = 0; i < kWrites; ++i) {
      auto version = server.Apply("tau{P(w" + std::to_string(i % 3) + ")}");
      ASSERT_TRUE(version.ok()) << version.status().message();
      std::lock_guard<std::mutex> lock(snapshots_mu);
      snapshots[*version] = server.CurrentSnapshot();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  for (int t = 0; t < kReaders; ++t) threads.emplace_back(reader, t);
  for (std::thread& th : threads) th.join();

  // Serial recompute: every recorded read must match the plain core evaluation
  // on the snapshot of the version it reported.
  size_t total = 0;
  for (const std::vector<RecordedRead>& per_thread : recorded) {
    for (const RecordedRead& r : per_thread) {
      ++total;
      auto it = snapshots.find(r.version);
      ASSERT_NE(it, snapshots.end()) << "read saw unpublished version "
                                     << r.version;
      const ReadRequest& request = pool[r.request];
      std::vector<Formula> antecedents;
      for (const std::string& text : request.antecedents) {
        auto parsed = ParseSentence(text);
        ASSERT_TRUE(parsed.ok());
        antecedents.push_back(*parsed);
      }
      auto consequent = ParseSentence(request.consequent);
      ASSERT_TRUE(consequent.ok());
      auto expected = NestedCounterfactual(it->second->kb, antecedents,
                                           *consequent, request.modality);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(r.holds, *expected)
          << "version " << r.version << " request " << r.request;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kReaders) * kReadsPerReader);
}

/// Readers demonstrably progress while the write lock is held: two writer
/// threads keep the server's serialized Apply section continuously occupied
/// (one of them holds writer_mu_ at essentially every instant, since the τ +
/// publish inside dwarfs the loop gap), and all reads complete while that
/// storm is still running. A read path that took the write lock would
/// serialize behind it and this test would hang rather than finish.
TEST(ServeStressTest, ReadersNeverBlockOnTheWriter) {
  Server server(StressKb());
  const std::vector<ReadRequest> pool = StressReadPool();

  std::atomic<bool> writers_running{true};
  std::atomic<uint64_t> reads_done{0};

  // Two writer threads keep writer_mu_ continuously contended — at any moment
  // one of them holds it (Apply cost dwarfs the gap between calls).
  auto writer = [&](int seed) {
    int i = 0;
    while (writers_running.load()) {
      auto version =
          server.Apply("tau{P(w" + std::to_string((seed + i++) % 3) + ")}");
      ASSERT_TRUE(version.ok());
    }
  };
  std::thread w1(writer, 0), w2(writer, 1);

  // Readers: a fixed number of queries each. If reads took the write lock,
  // they would serialize behind the writer storm and this loop would crawl;
  // with MVCC they only ever load a snapshot pointer.
  constexpr int kReaders = 3;
  constexpr int kReads = 25;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::unique_ptr<Session> session = server.StartSession();
      for (int i = 0; i < kReads; ++i) {
        auto result = session->Query(pool[(t + i) % pool.size()]);
        ASSERT_TRUE(result.ok());
        reads_done.fetch_add(1);
      }
    });
  }
  for (std::thread& r : readers) r.join();

  // All reads finished while the writers were still running (they stop only
  // after this line) — no reader waited for the write side to go idle.
  EXPECT_TRUE(writers_running.load());
  EXPECT_EQ(reads_done.load(), static_cast<uint64_t>(kReaders) * kReads);
  writers_running.store(false);
  w1.join();
  w2.join();
}

/// Durable mode under the same pressure: the writer also rotates checkpoints,
/// which swaps WAL files while readers run. Readers never touch the store, so
/// this exercises snapshot lifetime against store GC.
TEST(ServeStressTest, DurableWriterWithCheckpointRotation) {
  std::string dir = ::testing::TempDir() + "kbt_serve_stress_store";
  if (store::Env::Default()->FileExists(dir)) {
    auto names = store::Env::Default()->ListDir(dir);
    if (names.ok()) {
      for (const std::string& n : *names) {
        Status ignored = store::Env::Default()->RemoveFile(dir + "/" + n);
        (void)ignored;
      }
    }
  }
  ServerOptions options;
  options.checkpoint_every = 3;  // Rotate continuously under load.
  auto opened =
      Server::OpenDurable(dir, StressKb(), store::StoreOptions(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  Server& server = **opened;
  const std::vector<ReadRequest> pool = StressReadPool();

  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      auto version = server.Apply("tau{P(w" + std::to_string(i % 3) + ")}");
      ASSERT_TRUE(version.ok()) << version.status().message();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::unique_ptr<Session> session = server.StartSession();
      for (int i = 0; i < 20; ++i) {
        auto result = session->Query(pool[(t + 2 * i) % pool.size()]);
        ASSERT_TRUE(result.ok()) << result.status().message();
      }
    });
  }
  for (std::thread& r : readers) r.join();
  writer.join();

  // The served state equals the store's committed state, post-rotation.
  EXPECT_EQ(server.CurrentSnapshot()->kb, server.store()->kb());
  EXPECT_GE(server.store()->lsn(), 10u);
}

}  // namespace
}  // namespace kbt::serve
