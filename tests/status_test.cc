#include "base/status.h"

#include <gtest/gtest.h>

#include <cerrno>

namespace kbt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad schema");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad schema");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad schema");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, StorageCodeNames) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "io-error: disk gone");
  EXPECT_EQ(Status::DataLoss("bad crc").ToString(), "data-loss: bad crc");
}

TEST(StatusTest, IOErrorFromErrnoCarriesErrno) {
  Status s = Status::IOErrorFromErrno("write wal.log", ENOSPC);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("write wal.log: "), std::string::npos);
  EXPECT_NE(s.message().find("(errno " + std::to_string(ENOSPC) + ")"),
            std::string::npos);
  // The human-readable strerror text rides along.
  EXPECT_NE(s.message().find("space"), std::string::npos);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("r"), Status::NotFound("r"));
  EXPECT_FALSE(Status::NotFound("r") == Status::NotFound("s"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  KBT_ASSIGN_OR_RETURN(int h, Half(x));
  KBT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

Status NeedsOk(const Status& s) {
  KBT_RETURN_IF_ERROR(s);
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(NeedsOk(Status::OK()).ok());
  EXPECT_EQ(NeedsOk(Status::Internal("boom")).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace kbt
