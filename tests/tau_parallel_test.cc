/// \file
/// The τ executor's determinism contract: for every knowledgebase and sentence,
/// Tau with threads=N and any cache setting returns a Knowledgebase *equal* to
/// the sequential result — same canonical member list, bit for bit. Verified on
/// randomized inputs across strategies (auto dispatch and forced SAT), plus
/// deterministic error propagation and stats sanity.

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/kbt.h"
#include "exec/pool.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::RandomDatabase;
using testutil::RandomSentenceGenerator;
using testutil::TestSchema;

/// A random kb with more members than testutil's default (τ fan-out wants
/// enough worlds to split into chunks).
Knowledgebase RandomWideKb(std::mt19937_64* rng, int min_members,
                           int max_members) {
  std::uniform_int_distribution<int> count(min_members, max_members);
  std::vector<Database> dbs;
  int k = count(*rng);
  for (int i = 0; i < k; ++i) dbs.push_back(RandomDatabase(rng));
  return *Knowledgebase::FromDatabases(std::move(dbs));
}

TEST(TauParallelTest, MatchesSequentialOnRandomInputsAutoStrategy) {
  std::mt19937_64 rng(2024);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.3);
  int compared = 0;
  for (int iter = 0; iter < 40; ++iter) {
    Knowledgebase kb = RandomWideKb(&rng, 4, 9);
    Formula phi = gen.Generate(3);

    TauOptions seq;
    seq.threads = 1;
    TauStats seq_stats;
    StatusOr<Knowledgebase> expected = Tau(phi, kb, seq, &seq_stats);

    for (size_t threads : {2u, 4u}) {
      TauOptions par;
      par.threads = threads;
      TauStats par_stats;
      StatusOr<Knowledgebase> got = Tau(phi, kb, par, &par_stats);
      ASSERT_EQ(expected.ok(), got.ok())
          << "iter " << iter << " threads " << threads;
      if (!expected.ok()) {
        // Success/failure is scheduling-independent; the specific code is not
        // when different worlds fail differently (the executor reports the
        // first failure it observed and skips the rest).
        continue;
      }
      EXPECT_EQ(*expected, *got) << "iter " << iter << " threads " << threads;
      EXPECT_EQ(seq_stats.output_databases, par_stats.output_databases);
      // μ counters merge in world order: identical regardless of scheduling.
      EXPECT_EQ(seq_stats.mu.minimal_models, par_stats.mu.minimal_models);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(TauParallelTest, MatchesSequentialForcedSatAcrossCacheAndPrefixModes) {
  // The bit-identity contract of prefix sharing: for every (kb, φ), τ with the
  // frozen-CNF-prefix fork on or off — across thread counts and grounding
  // cache settings — returns the same canonical knowledgebase as the plain
  // sequential, cacheless run. Forked solvers replay the exact search of
  // freshly encoded ones, so this holds bit for bit, not just set-equal.
  std::mt19937_64 rng(77);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.4);
  for (int iter = 0; iter < 20; ++iter) {
    Knowledgebase kb = RandomWideKb(&rng, 3, 6);
    Formula phi = gen.Generate(2);

    TauOptions seq_nocache;
    seq_nocache.mu.strategy = MuStrategy::kSat;
    seq_nocache.threads = 1;
    seq_nocache.use_ground_cache = false;
    seq_nocache.use_cnf_prefix = false;
    StatusOr<Knowledgebase> expected = Tau(phi, kb, seq_nocache);

    for (size_t threads : {1u, 4u}) {
      for (bool cache : {false, true}) {
        for (bool prefix : {false, true}) {
          TauOptions par;
          par.mu.strategy = MuStrategy::kSat;
          par.threads = threads;
          par.use_ground_cache = cache;
          par.use_cnf_prefix = prefix;
          StatusOr<Knowledgebase> got = Tau(phi, kb, par);
          ASSERT_EQ(expected.ok(), got.ok())
              << "iter " << iter << " threads " << threads << " cache " << cache
              << " prefix " << prefix;
          if (expected.ok()) {
            EXPECT_EQ(*expected, *got)
                << "iter " << iter << " threads " << threads << " cache "
                << cache << " prefix " << prefix;
          }
        }
      }
    }
  }
}

TEST(TauParallelTest, SharedDomainWorldsHitTheCache) {
  // testutil worlds all pin Dom = {a, b, c}, so their active domains coincide
  // whenever the sentence adds no new constants: one miss, size-1 hits. On the
  // SAT path the worlds hit the frozen-CNF-prefix cache; the grounding cache
  // behind it grounds exactly once (for the prefix build) and is never
  // consulted again.
  std::mt19937_64 rng(5);
  std::vector<Database> dbs;
  for (int i = 0; i < 6; ++i) dbs.push_back(RandomDatabase(&rng));
  Knowledgebase kb = *Knowledgebase::FromDatabases(std::move(dbs));
  size_t worlds = kb.size();

  Formula phi = *ParseSentence("forall x: (P(x) & !Q(x, x)) -> (N(x) & P(x))");
  TauOptions options;
  options.mu.strategy = MuStrategy::kSat;
  options.threads = 2;
  TauStats stats;
  StatusOr<Knowledgebase> result = Tau(phi, kb, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(stats.cnf_cache_misses, 1u);
  EXPECT_EQ(stats.cnf_cache_hits, worlds - 1);
  EXPECT_EQ(stats.ground_cache_misses, 1u);
  EXPECT_EQ(stats.ground_cache_hits, 0u);
  EXPECT_EQ(stats.threads_used, 2u);

  // With prefix sharing off, the per-world encodings fall back to the shared
  // grounding: size-1 grounding-cache hits instead.
  TauOptions noprefix = options;
  noprefix.use_cnf_prefix = false;
  TauStats noprefix_stats;
  StatusOr<Knowledgebase> noprefix_result = Tau(phi, kb, noprefix, &noprefix_stats);
  ASSERT_TRUE(noprefix_result.ok()) << noprefix_result.status();
  EXPECT_EQ(noprefix_stats.ground_cache_misses, 1u);
  EXPECT_EQ(noprefix_stats.ground_cache_hits, worlds - 1);
  EXPECT_EQ(noprefix_stats.cnf_cache_hits, 0u);
  EXPECT_EQ(noprefix_stats.cnf_cache_misses, 0u);
  EXPECT_EQ(*noprefix_result, *result);

  // And the cached run agrees with the uncached sequential one.
  TauOptions plain;
  plain.mu.strategy = MuStrategy::kSat;
  plain.use_ground_cache = false;
  plain.use_cnf_prefix = false;
  StatusOr<Knowledgebase> expected = Tau(phi, kb, plain);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*expected, *result);
}

TEST(TauParallelTest, WorldScratchPoolReusedAcrossManyWorldsAndThreads) {
  // The per-worker WorldScratch pool (exec/scratch.h): with ≥ 4 workers and
  // several times that many SAT worlds, every worker's scratch — the
  // enumerator tables, the descent buffers, the parked materializer — is
  // dirtied by one world and reused by the next, concurrently across workers.
  // The executor contract stands: results equal the sequential run exactly.
  // (Runs under TSan via the CI filter; races on scratch reuse would surface
  // here.)
  std::mt19937_64 rng(20260730);
  RandomSentenceGenerator gen(&rng, /*new_relation_prob=*/0.4);
  for (int iter = 0; iter < 6; ++iter) {
    Knowledgebase kb = RandomWideKb(&rng, 12, 20);
    Formula phi = gen.Generate(2);

    TauOptions seq;
    seq.mu.strategy = MuStrategy::kSat;
    seq.threads = 1;
    StatusOr<Knowledgebase> expected = Tau(phi, kb, seq);

    for (size_t threads : {4u, 6u}) {
      TauOptions par = seq;
      par.threads = threads;
      TauStats stats;
      StatusOr<Knowledgebase> got = Tau(phi, kb, par, &stats);
      ASSERT_EQ(expected.ok(), got.ok())
          << "iter " << iter << " threads " << threads;
      if (expected.ok()) {
        EXPECT_EQ(*expected, *got) << "iter " << iter << " threads " << threads;
        EXPECT_GE(stats.threads_used, 4u);
      }
    }
  }
}

TEST(TauParallelTest, ParallelCanonicalizationBitIdenticalAtFourThreads) {
  // The delta-structured world-set contract: canonicalization's parallel hash
  // pass (Knowledgebase::ParallelMap over ≥ 4 pool workers) is bit-identical
  // to the sequential off path — overlay hashing is a pure per-world function
  // and every dedup/ordering decision happens after the barrier, so nothing
  // can depend on scheduling. Duplicated inputs make the dedup do real work.
  // (Runs under TSan via the CI TauParallel filter; a racy hash pass — e.g.
  // on the shared base or on cached relation hashes — would surface here.)
  std::mt19937_64 rng(20260808);
  exec::ThreadPool pool(4);
  Knowledgebase::ParallelMap pmap =
      [&pool](size_t n, const std::function<void(size_t)>& fn) {
        return pool.ParallelFor(n, [&fn](size_t i, size_t) { fn(i); });
      };
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<Database> dbs;
    int k = 12 + iter % 9;
    for (int i = 0; i < k; ++i) dbs.push_back(RandomDatabase(&rng));
    for (int i = 0; i < 6; ++i) dbs.push_back(dbs[i]);  // Forced duplicates.
    Knowledgebase flat = *Knowledgebase::FromDatabases(dbs);

    auto base = std::make_shared<const Database>(dbs.front());
    std::vector<WorldOverlay> overlays;
    overlays.reserve(dbs.size());
    for (const Database& db : dbs) {
      overlays.push_back(WorldOverlay::FromDiff(*base, db));
    }
    std::vector<WorldOverlay> copy = overlays;
    StatusOr<Knowledgebase> seq =
        Knowledgebase::FromBaseAndOverlays(base, std::move(copy));
    StatusOr<Knowledgebase> par =
        Knowledgebase::FromBaseAndOverlays(base, std::move(overlays), &pmap);
    ASSERT_TRUE(seq.ok()) << seq.status();
    ASSERT_TRUE(par.ok()) << par.status();
    ASSERT_EQ(*seq, *par) << "iter " << iter;
    ASSERT_EQ(flat, *par) << "iter " << iter;
    // Bit-identical canonical sequence, not just set-equality: same overlay
    // at every index.
    ASSERT_EQ(seq->size(), par->size());
    for (size_t i = 0; i < seq->size(); ++i) {
      ASSERT_EQ(seq->overlays()[i], par->overlays()[i]) << "iter " << iter;
    }

    // UnionAll takes the same hook on the τ merge path; split the worlds into
    // parts and check the hooked union against the sequential one.
    std::vector<Knowledgebase> parts_seq;
    std::vector<Knowledgebase> parts_par;
    for (size_t start = 0; start < dbs.size(); start += 5) {
      std::vector<Database> chunk(
          dbs.begin() + start,
          dbs.begin() + std::min(start + 5, dbs.size()));
      Knowledgebase part = *Knowledgebase::FromDatabases(std::move(chunk));
      parts_seq.push_back(part);
      parts_par.push_back(std::move(part));
    }
    StatusOr<Knowledgebase> union_seq =
        Knowledgebase::UnionAll(std::move(parts_seq));
    StatusOr<Knowledgebase> union_par =
        Knowledgebase::UnionAll(std::move(parts_par), &pmap);
    ASSERT_TRUE(union_seq.ok()) << union_seq.status();
    ASSERT_TRUE(union_par.ok()) << union_par.status();
    ASSERT_EQ(*union_seq, *union_par) << "iter " << iter;
    ASSERT_EQ(flat, *union_par) << "iter " << iter;
  }
}

TEST(TauParallelTest, ErrorPropagationIsDeterministic) {
  // A tiny grounding budget fails every world; parallel and sequential must
  // report the same code (the lowest-indexed world's error).
  std::mt19937_64 rng(11);
  std::vector<Database> dbs;
  for (int i = 0; i < 5; ++i) dbs.push_back(RandomDatabase(&rng));
  Knowledgebase kb = *Knowledgebase::FromDatabases(std::move(dbs));

  Formula phi = *ParseSentence(
      "forall x, y, z: (Q(x, y) & Q(y, z)) -> (Q(x, z) | P(x))");
  for (size_t threads : {1u, 4u}) {
    TauOptions options;
    options.mu.strategy = MuStrategy::kSat;
    options.mu.max_ground_nodes = 2;
    options.threads = threads;
    StatusOr<Knowledgebase> result = Tau(phi, kb, options);
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(TauParallelTest, SingleFailingWorldSurfacesStatusWithoutCrashing) {
  // Graceful degradation: one world with a much larger active domain than its
  // siblings blows a grounding budget sized for the small ones. That world
  // alone fails, the call surfaces its Status, and the process — pool workers
  // included — survives to serve the next call.
  Schema schema = *Schema::Of({{"Dom", 1}, {"Q", 2}});
  auto world = [&](int id, int domain) {
    Relation::Builder dom(1);
    for (int i = 0; i < domain; ++i) {
      dom.Append({Name("w" + std::to_string(id) + "_" + std::to_string(i))});
    }
    return *Database::Create(schema, {dom.Build(), Relation(2)});
  };
  std::vector<Database> small;
  for (int i = 0; i < 6; ++i) small.push_back(world(i, 2));
  Knowledgebase small_kb = *Knowledgebase::FromDatabases(small);
  small.push_back(world(99, 16));
  Knowledgebase mixed_kb = *Knowledgebase::FromDatabases(std::move(small));

  Formula phi = *ParseSentence("forall x, y: Q(x, y) -> Q(y, x)");
  TauOptions options;
  options.mu.strategy = MuStrategy::kSat;
  options.mu.max_ground_nodes = 600;

  for (size_t threads : {1u, 4u}) {
    options.threads = threads;
    // The budget clears every small world...
    StatusOr<Knowledgebase> healthy = Tau(phi, small_kb, options);
    ASSERT_TRUE(healthy.ok()) << healthy.status();
    // ...and only the big world trips it.
    StatusOr<Knowledgebase> degraded = Tau(phi, mixed_kb, options);
    ASSERT_FALSE(degraded.ok()) << "threads " << threads;
    EXPECT_EQ(degraded.status().code(), StatusCode::kResourceExhausted);
    // The failure poisoned nothing: the same call with a real budget works.
    TauOptions generous = options;
    generous.mu.max_ground_nodes = 5'000'000;
    StatusOr<Knowledgebase> retry = Tau(phi, mixed_kb, generous);
    EXPECT_TRUE(retry.ok()) << retry.status();
  }
}

TEST(TauParallelTest, ThreadsCappedByWorldCountAndZeroMeansAuto) {
  std::mt19937_64 rng(3);
  Knowledgebase kb = *Knowledgebase::FromDatabases(
      {RandomDatabase(&rng), RandomDatabase(&rng)});
  Formula phi = *ParseSentence("P(a) | Q(a, b)");

  TauOptions options;
  options.threads = 16;  // More threads than worlds: capped at kb.size().
  TauStats stats;
  StatusOr<Knowledgebase> result = Tau(phi, kb, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(stats.threads_used, kb.size());

  options.threads = 0;  // Auto: hardware concurrency, still capped and valid.
  TauStats auto_stats;
  StatusOr<Knowledgebase> auto_result = Tau(phi, kb, options, &auto_stats);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status();
  EXPECT_GE(auto_stats.threads_used, 1u);
  EXPECT_EQ(*result, *auto_result);
}

TEST(TauParallelTest, PipelineAndEnginePlumbThreadCount) {
  std::mt19937_64 rng(9);
  std::vector<Database> dbs;
  for (int i = 0; i < 4; ++i) dbs.push_back(RandomDatabase(&rng));
  Knowledgebase kb = *Knowledgebase::FromDatabases(std::move(dbs));

  Engine sequential;
  Engine parallel;
  parallel.options().tau_threads = 4;
  const char* expr = "tau{ forall x: P(x) -> N(x) } >> pi[N]";
  StatusOr<Knowledgebase> seq = sequential.Apply(expr, kb);
  StatusOr<Knowledgebase> par = parallel.Apply(expr, kb);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  EXPECT_EQ(*seq, *par);
}

}  // namespace
}  // namespace kbt
