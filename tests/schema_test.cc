#include <gtest/gtest.h>

#include "rel/schema.h"

namespace kbt {
namespace {

TEST(SchemaTest, OfBuildsOrderedDecls) {
  auto s = Schema::Of({{"R1", 2}, {"R2", 1}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ(s->decl(0).symbol, Name("R1"));
  EXPECT_EQ(s->decl(1).symbol, Name("R2"));
  EXPECT_EQ(s->ToString(), "[R1/2, R2/1]");
}

TEST(SchemaTest, DuplicateSymbolRejected) {
  auto s = Schema::Of({{"R", 2}, {"R", 2}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, Lookup) {
  auto s = *Schema::Of({{"R1", 2}, {"R2", 1}});
  EXPECT_EQ(*s.PositionOf(Name("R2")), 1u);
  EXPECT_FALSE(s.PositionOf(Name("R9")).has_value());
  EXPECT_EQ(*s.ArityOf(Name("R1")), 2u);
  EXPECT_TRUE(s.Contains(Name("R1")));
  EXPECT_FALSE(s.Contains(Name("R9")));
}

TEST(SchemaTest, IncludesIsThePaperDominates) {
  auto big = *Schema::Of({{"R1", 2}, {"R2", 1}});
  auto small = *Schema::Of({{"R2", 1}});
  EXPECT_TRUE(big.Includes(small));
  EXPECT_FALSE(small.Includes(big));
  EXPECT_TRUE(big.Includes(big));
  EXPECT_TRUE(big.Includes(Schema()));
  // Same symbol, wrong arity: not included.
  auto wrong = *Schema::Of({{"R2", 3}});
  EXPECT_FALSE(big.Includes(wrong));
}

TEST(SchemaTest, UnionAppendsNewSymbols) {
  auto a = *Schema::Of({{"R1", 2}});
  auto b = *Schema::Of({{"R2", 1}, {"R1", 2}});
  auto u = a.Union(b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 2u);
  EXPECT_EQ(u->decl(0).symbol, Name("R1"));  // Left operand order preserved.
  EXPECT_EQ(u->decl(1).symbol, Name("R2"));
}

TEST(SchemaTest, UnionArityConflictRejected) {
  auto a = *Schema::Of({{"R1", 2}});
  auto b = *Schema::Of({{"R1", 3}});
  EXPECT_FALSE(a.Union(b).ok());
}

}  // namespace
}  // namespace kbt
