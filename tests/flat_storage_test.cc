/// \file
/// Edge cases of the flat, arity-strided relation storage: zero-ary relations,
/// empty merges, Builder dedup, TupleView ordering/hash consistency with the
/// owning Tuple, and a randomized property test checking every set operation
/// against a naive std::set<std::vector<Value>> reference implementation.

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "rel/relation.h"

namespace kbt {
namespace {

TEST(FlatStorageTest, ZeroAryAlgebra) {
  Relation empty(0);
  Relation holds = empty.WithTuple(Tuple());
  ASSERT_EQ(holds.size(), 1u);
  ASSERT_TRUE(holds.Contains(Tuple()));

  EXPECT_EQ(empty.Union(holds), holds);
  EXPECT_EQ(holds.Union(holds), holds);
  EXPECT_EQ(empty.Intersect(holds), empty);
  EXPECT_EQ(holds.Intersect(holds), holds);
  EXPECT_EQ(holds.Difference(holds), empty);
  EXPECT_EQ(holds.Difference(empty), holds);
  EXPECT_EQ(holds.SymmetricDifference(holds), empty);
  EXPECT_EQ(holds.SymmetricDifference(empty), holds);
  EXPECT_EQ(empty.SymmetricDifference(holds), holds);
  EXPECT_TRUE(empty.IsSubsetOf(holds));
  EXPECT_TRUE(holds.IsSubsetOf(holds));
  EXPECT_FALSE(holds.IsSubsetOf(empty));
  EXPECT_EQ(holds.WithoutTuple(Tuple()), empty);
  EXPECT_EQ(holds.WithTuple(Tuple()), holds);  // Idempotent.
  EXPECT_LT(empty, holds);                     // {} < {()}.
  EXPECT_NE(empty.Hash(), holds.Hash());
}

TEST(FlatStorageTest, ZeroAryBuilderDedups) {
  Relation::Builder b(0);
  for (int i = 0; i < 5; ++i) b.Append(TupleView());
  Relation r = b.Build();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.arity(), 0u);
  EXPECT_TRUE(r.Contains(Tuple()));
}

TEST(FlatStorageTest, EmptyMerges) {
  Relation empty(2);
  Relation r(2, {Tuple::Of({"a", "b"}), Tuple::Of({"c", "d"})});
  EXPECT_EQ(empty.Union(empty), empty);
  EXPECT_EQ(empty.Union(r), r);
  EXPECT_EQ(r.Union(empty), r);
  EXPECT_EQ(empty.Intersect(r), empty);
  EXPECT_EQ(r.Intersect(empty), empty);
  EXPECT_EQ(empty.Difference(r), empty);
  EXPECT_EQ(r.Difference(empty), r);
  EXPECT_EQ(empty.SymmetricDifference(r), r);
  EXPECT_EQ(r.SymmetricDifference(empty), r);
  EXPECT_TRUE(empty.IsSubsetOf(r));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
  EXPECT_FALSE(r.IsSubsetOf(empty));
}

TEST(FlatStorageTest, BuilderSortsAndDedups) {
  // Rows sort by interned symbol id; intern in ascending name order so the
  // id order matches the name order regardless of which tests ran before.
  for (std::string_view n : {"a", "b", "c", "z"}) Name(n);
  Relation::Builder b(2);
  b.Reserve(4);
  b.Append({Name("b"), Name("c")});
  b.Append({Name("a"), Name("b")});
  b.Append({Name("b"), Name("c")});
  Value* row = b.AppendRow();
  row[0] = Name("a");
  row[1] = Name("a");
  EXPECT_EQ(b.rows(), 4u);
  Relation r = b.Build();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.flat().size(), 6u);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
  EXPECT_EQ(r[0], TupleView(Tuple::Of({"a", "a"})));
  EXPECT_TRUE(r.Contains(Tuple::Of({"b", "c"})));
  // The builder is reusable after Build.
  b.Append({Name("z"), Name("z")});
  Relation r2 = b.Build();
  EXPECT_EQ(r2.size(), 1u);
}

TEST(FlatStorageTest, BuilderDropLastRow) {
  Relation::Builder b(1);
  b.Append({Name("a")});
  Value* row = b.AppendRow();
  row[0] = Name("b");
  b.DropLastRow();
  Relation r = b.Build();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains(Tuple::Of({"b"})));
}

TEST(FlatStorageTest, TupleViewOrderingAndHashAgreeWithTuple) {
  std::vector<Tuple> tuples = {
      Tuple(),
      Tuple::Of({"a"}),
      Tuple::Of({"a", "a"}),
      Tuple::Of({"a", "b"}),
      Tuple::Of({"b"}),
      Tuple::Of({"b", "a"}),
  };
  for (const Tuple& s : tuples) {
    for (const Tuple& t : tuples) {
      EXPECT_EQ(TupleView(s) == TupleView(t), s == t) << s.ToString();
      EXPECT_EQ(TupleView(s) < TupleView(t), s < t)
          << s.ToString() << " vs " << t.ToString();
    }
    EXPECT_EQ(TupleView(s).Hash(), s.Hash());
    EXPECT_EQ(TupleView(s).ToTuple(), s);
    EXPECT_EQ(TupleView(s).ToString(), s.ToString());
  }
}

TEST(FlatStorageTest, IterationYieldsRowsInOrder) {
  // Pin symbol ids to name order (see BuilderSortsAndDedups).
  for (std::string_view n : {"a", "b", "c"}) Name(n);
  Relation r(2, {Tuple::Of({"c", "a"}), Tuple::Of({"a", "b"}), Tuple::Of({"b", "b"})});
  std::vector<Tuple> seen;
  for (TupleView t : r) seen.push_back(t.ToTuple());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), Tuple::Of({"a", "b"}));
  EXPECT_EQ(r.front(), TupleView(seen.front()));
}

// ---------------------------------------------------------------------------
// Property test: flat merges agree with a naive set-of-vectors reference.
// ---------------------------------------------------------------------------

using RefSet = std::set<std::vector<Value>>;

Relation FromRef(size_t arity, const RefSet& ref) {
  Relation::Builder b(arity);
  for (const auto& row : ref) {
    if (arity == 0) {
      b.Append(TupleView());
    } else {
      b.Append(TupleView(row.data(), row.size()));
    }
  }
  return b.Build();
}

RefSet ToRef(const Relation& r) {
  RefSet out;
  for (TupleView t : r) out.insert(std::vector<Value>(t.begin(), t.end()));
  return out;
}

RefSet RandomRef(size_t arity, size_t max_rows, std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> rows(0, max_rows);
  std::uniform_int_distribution<int> val(0, 3);
  RefSet out;
  size_t n = rows(*rng);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(arity);
    for (size_t k = 0; k < arity; ++k) {
      row.push_back(Name(std::string(1, static_cast<char>('a' + val(*rng)))));
    }
    out.insert(std::move(row));
  }
  return out;
}

class FlatSetOpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlatSetOpsPropertyTest, AgreesWithNaiveReference) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (size_t arity : {size_t{0}, size_t{1}, size_t{2}, size_t{3}}) {
    RefSet ra = RandomRef(arity, 12, &rng);
    RefSet rb = RandomRef(arity, 12, &rng);
    Relation a = FromRef(arity, ra);
    Relation b = FromRef(arity, rb);
    ASSERT_EQ(ToRef(a), ra);

    RefSet ref_union, ref_inter, ref_diff, ref_sym;
    std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                   std::inserter(ref_union, ref_union.end()));
    std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                          std::inserter(ref_inter, ref_inter.end()));
    std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(ref_diff, ref_diff.end()));
    std::set_symmetric_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                                  std::inserter(ref_sym, ref_sym.end()));

    EXPECT_EQ(ToRef(a.Union(b)), ref_union);
    EXPECT_EQ(ToRef(a.Intersect(b)), ref_inter);
    EXPECT_EQ(ToRef(a.Difference(b)), ref_diff);
    EXPECT_EQ(ToRef(a.SymmetricDifference(b)), ref_sym);
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()));
    EXPECT_EQ(a.Union(b).size(), ref_union.size());

    // Contains / WithTuple / WithoutTuple agree with the reference on every
    // row of the union.
    for (const auto& row : ref_union) {
      TupleView t(row.data(), arity);
      EXPECT_EQ(a.Contains(t), ra.count(row) > 0);
      RefSet with = ra;
      with.insert(row);
      EXPECT_EQ(ToRef(a.WithTuple(t)), with);
      RefSet without = ra;
      without.erase(row);
      EXPECT_EQ(ToRef(a.WithoutTuple(t)), without);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatSetOpsPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace kbt
