#include <gtest/gtest.h>

#include "core/engine.h"
#include "rel/database.h"

namespace kbt {
namespace {

TEST(DatabaseTest, EmptyConstruction) {
  Database db(*Schema::Of({{"R", 2}, {"S", 1}}));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.relation_at(0).empty());
  EXPECT_EQ(db.relation_at(0).arity(), 2u);
  EXPECT_EQ(db.TupleCount(), 0u);
}

TEST(DatabaseTest, CreateChecksArities) {
  Schema s = *Schema::Of({{"R", 2}});
  EXPECT_FALSE(Database::Create(s, {Relation(1)}).ok());
  EXPECT_FALSE(Database::Create(s, {}).ok());
  EXPECT_TRUE(Database::Create(s, {Relation(2)}).ok());
}

TEST(DatabaseTest, RelationAccessAndUpdate) {
  Database db = *MakeDatabase({{"R", 2}}, {{"R", {{"a", "b"}}}});
  EXPECT_EQ(db.RelationFor("R")->size(), 1u);
  EXPECT_EQ(db.RelationFor("missing").status().code(), StatusCode::kNotFound);
  Database db2 = *db.WithRelation("R", MakeRelation(2, {{"a", "b"}, {"b", "c"}}));
  EXPECT_EQ(db2.RelationFor("R")->size(), 2u);
  EXPECT_EQ(db.RelationFor("R")->size(), 1u);  // Immutability.
  // Arity mismatch rejected.
  EXPECT_FALSE(db.WithRelation("R", Relation(3)).ok());
}

TEST(DatabaseTest, ExtendToEmbedsWithEmptyNewRelations) {
  Database db = *MakeDatabase({{"R", 2}}, {{"R", {{"a", "b"}}}});
  Schema super = *Schema::Of({{"R", 2}, {"S", 1}});
  Database big = *db.ExtendTo(super);
  EXPECT_EQ(big.schema(), super);
  EXPECT_EQ(big.RelationFor("R")->size(), 1u);
  EXPECT_TRUE(big.RelationFor("S")->empty());
  // Cannot extend to a schema that does not dominate.
  EXPECT_FALSE(db.ExtendTo(*Schema::Of({{"S", 1}})).ok());
}

TEST(DatabaseTest, ProjectToReordersComponents) {
  Database db = *MakeDatabase({{"R", 2}, {"S", 1}},
                              {{"R", {{"a", "b"}}}, {"S", {{"c"}}}});
  Database p = *db.ProjectTo({Name("S"), Name("R")});
  EXPECT_EQ(p.schema().decl(0).symbol, Name("S"));
  EXPECT_EQ(p.schema().decl(1).symbol, Name("R"));
  EXPECT_EQ(p.RelationFor("S")->size(), 1u);
  EXPECT_FALSE(db.ProjectTo({Name("Zed")}).ok());
}

TEST(DatabaseTest, ActiveDomainSortedUnique) {
  Database db = *MakeDatabase({{"R", 2}, {"S", 1}},
                              {{"R", {{"a", "b"}, {"b", "c"}}}, {"S", {{"a"}}}});
  std::vector<Value> dom = db.ActiveDomain();
  EXPECT_EQ(dom.size(), 3u);
  EXPECT_TRUE(std::is_sorted(dom.begin(), dom.end()));
}

TEST(DatabaseTest, MeetAndJoinAreComponentwise) {
  Database a = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}, {"b"}}}});
  Database b = *MakeDatabase({{"R", 1}}, {{"R", {{"b"}, {"c"}}}});
  EXPECT_EQ(*a.Meet(b)->RelationFor("R"), MakeRelation(1, {{"b"}}));
  EXPECT_EQ(*a.Join(b)->RelationFor("R"), MakeRelation(1, {{"a"}, {"b"}, {"c"}}));
  Database other = *MakeDatabase({{"S", 1}}, {});
  EXPECT_FALSE(a.Meet(other).ok());
  EXPECT_FALSE(a.Join(other).ok());
}

TEST(DatabaseTest, EqualityAndHash) {
  Database a = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database b = *MakeDatabase({{"R", 1}}, {{"R", {{"a"}}}});
  Database c = *MakeDatabase({{"R", 1}}, {{"R", {{"b"}}}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace kbt
