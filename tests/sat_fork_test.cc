/// \file
/// The Freeze / InitFromFrozen contract behind frozen-CNF-prefix sharing: a
/// solver forked from a snapshot behaves bit-identically — same solve results,
/// same models, same search statistics, same arena contents — to a solver that
/// replayed the frozen prefix call by call. Property-tested on random
/// instances, plus independence of multiple forks and capacity-reuse hygiene
/// (forking into a dirty worker solver).

#include "sat/solver.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace kbt::sat {
namespace {

/// A reproducible random instance: `clauses[i]` over vars [0, num_vars).
struct RandomCnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

RandomCnf MakeRandomCnf(std::mt19937_64* rng, int num_vars, int num_clauses) {
  RandomCnf cnf;
  cnf.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::uniform_int_distribution<int> width(2, 4);
  std::bernoulli_distribution sign(0.5);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    int w = width(*rng);
    for (int k = 0; k < w; ++k) clause.push_back(MkLit(var(*rng), sign(*rng)));
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

void AddAll(Solver* s, const RandomCnf& cnf) {
  for (int i = 0; i < cnf.num_vars; ++i) s->NewVar();
  for (const auto& c : cnf.clauses) s->AddClause(c);
}

/// Drives the post-prefix workload the τ enumerator exemplifies: phase hints,
/// extra variables, guarded clauses, assumption solves, blocking clauses.
/// Records every solve result and, when SAT, the full model.
struct SuffixTrace {
  std::vector<SolveResult> results;
  std::vector<std::vector<bool>> models;
};

SuffixTrace DriveSuffix(Solver* s, const RandomCnf& suffix, uint64_t seed) {
  SuffixTrace trace;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(0.5);
  int base_vars = s->num_vars();
  for (int i = 0; i < base_vars; ++i) s->SetPhase(i, coin(rng));
  AddAll(s, suffix);
  auto record = [&](SolveResult r) {
    trace.results.push_back(r);
    if (r == SolveResult::kSat) {
      std::vector<bool> model;
      for (int v = 0; v < s->num_vars(); ++v) model.push_back(s->ModelValue(v));
      trace.models.push_back(std::move(model));
    }
  };
  record(s->Solve());
  // An activation-guarded clause + assumption solve, as the descent does.
  Var act = s->NewVar();
  std::vector<Lit> guard{MkLit(act, true)};
  for (int v = 0; v < 3 && v < base_vars; ++v) guard.push_back(MkLit(v, coin(rng)));
  s->AddClause(guard);
  record(s->Solve({MkLit(act)}));
  s->AddClause({MkLit(act, true)});  // Retire the guard.
  // A blocking-style clause over the first few variables, then a final solve.
  std::vector<Lit> block;
  for (int v = 0; v < 4 && v < base_vars; ++v) block.push_back(MkLit(v, coin(rng)));
  if (!block.empty()) s->AddClause(block);
  record(s->Solve());
  return trace;
}

void ExpectSameStats(const Solver& a, const Solver& b) {
  EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
  EXPECT_EQ(a.stats().decisions, b.stats().decisions);
  EXPECT_EQ(a.stats().propagations, b.stats().propagations);
  EXPECT_EQ(a.stats().restarts, b.stats().restarts);
  EXPECT_EQ(a.stats().learned_clauses, b.stats().learned_clauses);
  EXPECT_EQ(a.stats().solve_calls, b.stats().solve_calls);
  EXPECT_EQ(a.stats().minimized_literals, b.stats().minimized_literals);
  EXPECT_EQ(a.stats().glue_clauses, b.stats().glue_clauses);
}

TEST(SatForkTest, ForkMatchesReplayedPrefixBitForBit) {
  std::mt19937_64 rng(20260730);
  for (int inst = 0; inst < 40; ++inst) {
    RandomCnf prefix = MakeRandomCnf(&rng, 12, 30);
    RandomCnf suffix = MakeRandomCnf(&rng, 12, 10);
    suffix.num_vars = 0;  // Suffix clauses range over the prefix's variables.
    uint64_t suffix_seed = rng();

    // Reference: one solver replays prefix + suffix directly.
    Solver fresh;
    AddAll(&fresh, prefix);
    SuffixTrace expected = DriveSuffix(&fresh, suffix, suffix_seed);

    // Builder encodes the prefix once and freezes it.
    Solver builder;
    AddAll(&builder, prefix);
    Solver::Frozen frozen;
    builder.Freeze(&frozen);
    EXPECT_EQ(frozen.num_vars(), 12);

    // Fork into a dirty worker solver (capacity reuse must not leak state).
    Solver worker;
    for (int i = 0; i < 40; ++i) worker.NewVar();
    for (int i = 0; i + 2 < 40; ++i) {
      worker.AddClause({MkLit(i), MkLit(i + 1, true), MkLit(i + 2)});
    }
    EXPECT_EQ(worker.Solve(), SolveResult::kSat);
    worker.InitFromFrozen(frozen);
    EXPECT_EQ(worker.num_vars(), 12);
    SuffixTrace got = DriveSuffix(&worker, suffix, suffix_seed);

    ASSERT_EQ(expected.results, got.results) << "instance " << inst;
    ASSERT_EQ(expected.models, got.models) << "instance " << inst;
    ExpectSameStats(fresh, worker);
    EXPECT_EQ(fresh.num_clauses(), worker.num_clauses()) << "instance " << inst;
    EXPECT_EQ(fresh.arena_words(), worker.arena_words()) << "instance " << inst;
  }
}

TEST(SatForkTest, MultipleForksAreIndependent) {
  // Two forks of one snapshot diverge freely: clauses added to one are
  // invisible to the other and to the snapshot source.
  Solver builder;
  Var a = builder.NewVar(), b = builder.NewVar();
  builder.AddClause({MkLit(a), MkLit(b)});
  Solver::Frozen frozen;
  builder.Freeze(&frozen);

  Solver f1, f2;
  f1.InitFromFrozen(frozen);
  f2.InitFromFrozen(frozen);
  f1.AddClause({MkLit(a, true)});  // f1: forces b.
  f2.AddClause({MkLit(b, true)});  // f2: forces a.
  ASSERT_EQ(f1.Solve(), SolveResult::kSat);
  ASSERT_EQ(f2.Solve(), SolveResult::kSat);
  EXPECT_TRUE(f1.ModelValue(b));
  EXPECT_TRUE(f2.ModelValue(a));
  // The source is untouched by either fork.
  EXPECT_EQ(builder.num_clauses(), 1u);
  ASSERT_EQ(builder.Solve(), SolveResult::kSat);
}

TEST(SatForkTest, FrozenCarriesRootLevelUnits) {
  // Units propagated during AddClause live on the level-0 trail, not in the
  // arena; the snapshot must carry them or forks would forget forced facts.
  Solver builder;
  Var a = builder.NewVar(), b = builder.NewVar(), c = builder.NewVar();
  builder.AddClause({MkLit(a)});
  builder.AddClause({MkLit(a, true), MkLit(b)});  // Propagates b at the root.
  Solver::Frozen frozen;
  builder.Freeze(&frozen);

  Solver fork;
  fork.InitFromFrozen(frozen);
  fork.AddClause({MkLit(b, true), MkLit(c)});  // With b forced, c follows.
  ASSERT_EQ(fork.Solve(), SolveResult::kSat);
  EXPECT_TRUE(fork.ModelValue(a));
  EXPECT_TRUE(fork.ModelValue(b));
  EXPECT_TRUE(fork.ModelValue(c));
  // Asserting ¬a contradicts the frozen unit immediately.
  EXPECT_FALSE(fork.AddClause({MkLit(a, true)}));
  EXPECT_EQ(fork.Solve(), SolveResult::kUnsat);
}

TEST(SatForkTest, ForkOfInconsistentPrefixStaysUnsat) {
  Solver builder;
  Var a = builder.NewVar();
  builder.AddClause({MkLit(a)});
  EXPECT_FALSE(builder.AddClause({MkLit(a, true)}));
  Solver::Frozen frozen;
  builder.Freeze(&frozen);
  Solver fork;
  fork.InitFromFrozen(frozen);
  EXPECT_TRUE(fork.inconsistent());
  EXPECT_EQ(fork.Solve(), SolveResult::kUnsat);
}

}  // namespace
}  // namespace kbt::sat
