#include "base/interner.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kbt {
namespace {

TEST(InternerTest, InternIsIdempotent) {
  Interner interner;
  Symbol a = interner.Intern("alpha");
  Symbol b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.NameOf(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, LookupWithoutIntern) {
  Interner interner;
  Symbol out = 0;
  EXPECT_FALSE(interner.Lookup("missing", &out));
  Symbol a = interner.Intern("present");
  EXPECT_TRUE(interner.Lookup("present", &out));
  EXPECT_EQ(out, a);
}

TEST(InternerTest, GlobalInternerIsStable) {
  Symbol a1 = Name("kbt_test_global_a");
  Symbol a2 = Name("kbt_test_global_a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(NameOf(a1), "kbt_test_global_a");
}

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  Interner interner;
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  std::vector<std::vector<Symbol>> results(kThreads,
                                           std::vector<Symbol>(kNames, 0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        results[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            interner.Intern("name" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)], results[0]);
  }
  EXPECT_EQ(interner.size(), static_cast<size_t>(kNames));
}

}  // namespace
}  // namespace kbt
