#include "core/hypothetical.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "logic/parser.h"

namespace kbt {
namespace {

Knowledgebase RobotsKb() {
  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  return *Knowledgebase::FromDatabases({has_v, has_w});
}

TEST(CounterfactualTest, Example4RobotsQuery) {
  // "If V had landed, would W necessarily still be orbiting?" — no.
  Knowledgebase kb = RobotsKb();
  EXPECT_FALSE(*Counterfactual(kb, *ParseFormula("R1(v)"),
                               *ParseFormula("!R1(w)"),
                               Modality::kNecessarily));
  // But it is possible that W is still orbiting.
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("R1(v)"),
                              *ParseFormula("!R1(w)"), Modality::kPossibly));
  // And V's landing is certain after the update (KM postulate (i)).
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("R1(v)"), *ParseFormula("R1(v)"),
                              Modality::kNecessarily));
}

TEST(CounterfactualTest, ModalitiesDifferOnIndefiniteResults) {
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {});
  Formula a_or_b = *ParseFormula("P(a) | P(b)");
  EXPECT_FALSE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a)"),
                               Modality::kNecessarily));
  EXPECT_TRUE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a)"),
                              Modality::kPossibly));
  EXPECT_TRUE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a) | P(b)"),
                              Modality::kNecessarily));
}

TEST(CounterfactualTest, InconsistentAntecedent) {
  // A contradictory antecedent empties the kb: necessity is vacuous, possibility
  // fails.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
  Formula bad = *ParseFormula("P(a) & !P(a)");
  EXPECT_TRUE(*Counterfactual(kb, bad, *ParseFormula("P(zz)"),
                              Modality::kNecessarily));
  EXPECT_FALSE(*Counterfactual(kb, bad, *ParseFormula("P(a)"),
                               Modality::kPossibly));
}

TEST(CounterfactualTest, RightNestedChain) {
  // (A > (B > C)) as τ_A then τ_B then check C — the note after Example 4.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {});
  std::vector<Formula> chain = {*ParseFormula("P(a)"), *ParseFormula("P(b)")};
  EXPECT_TRUE(*NestedCounterfactual(kb, chain, *ParseFormula("P(a) & P(b)"),
                                    Modality::kNecessarily));
  // Later antecedents can undo earlier ones; the chain order matters.
  std::vector<Formula> undo = {*ParseFormula("P(a)"), *ParseFormula("!P(a)")};
  EXPECT_FALSE(*NestedCounterfactual(kb, undo, *ParseFormula("P(a)"),
                                     Modality::kPossibly));
}

TEST(CounterfactualTest, EmptyChainIsModalQuery) {
  Knowledgebase kb = RobotsKb();
  EXPECT_TRUE(*NestedCounterfactual(kb, {}, *ParseFormula("R1(v) | R1(w)"),
                                    Modality::kNecessarily));
  EXPECT_FALSE(*NestedCounterfactual(kb, {}, *ParseFormula("R1(v)"),
                                     Modality::kNecessarily));
}

TEST(CounterfactualTest, ConsequentOverNewRelations) {
  // The consequent may mention a relation the antecedent introduced.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("Q(a, b)"),
                              *ParseFormula("Q(a, b)"), Modality::kNecessarily));
  // ...or one mentioned by neither: empty under CWA, handled by extension.
  EXPECT_FALSE(*Counterfactual(kb, *ParseFormula("Q(a, b)"),
                               *ParseFormula("Zed(a)"), Modality::kPossibly));
}

}  // namespace
}  // namespace kbt
