#include "core/hypothetical.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/engine.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "exec/scratch.h"
#include "logic/parser.h"
#include "sat/solver.h"
#include "testutil.h"

namespace kbt {
namespace {

Knowledgebase RobotsKb() {
  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  return *Knowledgebase::FromDatabases({has_v, has_w});
}

TEST(CounterfactualTest, Example4RobotsQuery) {
  // "If V had landed, would W necessarily still be orbiting?" — no.
  Knowledgebase kb = RobotsKb();
  EXPECT_FALSE(*Counterfactual(kb, *ParseFormula("R1(v)"),
                               *ParseFormula("!R1(w)"),
                               Modality::kNecessarily));
  // But it is possible that W is still orbiting.
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("R1(v)"),
                              *ParseFormula("!R1(w)"), Modality::kPossibly));
  // And V's landing is certain after the update (KM postulate (i)).
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("R1(v)"), *ParseFormula("R1(v)"),
                              Modality::kNecessarily));
}

TEST(CounterfactualTest, ModalitiesDifferOnIndefiniteResults) {
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {});
  Formula a_or_b = *ParseFormula("P(a) | P(b)");
  EXPECT_FALSE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a)"),
                               Modality::kNecessarily));
  EXPECT_TRUE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a)"),
                              Modality::kPossibly));
  EXPECT_TRUE(*Counterfactual(kb, a_or_b, *ParseFormula("P(a) | P(b)"),
                              Modality::kNecessarily));
}

TEST(CounterfactualTest, InconsistentAntecedent) {
  // A contradictory antecedent empties the kb: necessity is vacuous, possibility
  // fails.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
  Formula bad = *ParseFormula("P(a) & !P(a)");
  EXPECT_TRUE(*Counterfactual(kb, bad, *ParseFormula("P(zz)"),
                              Modality::kNecessarily));
  EXPECT_FALSE(*Counterfactual(kb, bad, *ParseFormula("P(a)"),
                               Modality::kPossibly));
}

TEST(CounterfactualTest, RightNestedChain) {
  // (A > (B > C)) as τ_A then τ_B then check C — the note after Example 4.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {});
  std::vector<Formula> chain = {*ParseFormula("P(a)"), *ParseFormula("P(b)")};
  EXPECT_TRUE(*NestedCounterfactual(kb, chain, *ParseFormula("P(a) & P(b)"),
                                    Modality::kNecessarily));
  // Later antecedents can undo earlier ones; the chain order matters.
  std::vector<Formula> undo = {*ParseFormula("P(a)"), *ParseFormula("!P(a)")};
  EXPECT_FALSE(*NestedCounterfactual(kb, undo, *ParseFormula("P(a)"),
                                     Modality::kPossibly));
}

TEST(CounterfactualTest, EmptyChainIsModalQuery) {
  Knowledgebase kb = RobotsKb();
  EXPECT_TRUE(*NestedCounterfactual(kb, {}, *ParseFormula("R1(v) | R1(w)"),
                                    Modality::kNecessarily));
  EXPECT_FALSE(*NestedCounterfactual(kb, {}, *ParseFormula("R1(v)"),
                                     Modality::kNecessarily));
}

TEST(CounterfactualTest, ConsequentOverNewRelations) {
  // The consequent may mention a relation the antecedent introduced.
  Knowledgebase kb = *MakeSingletonKb({{"P", 1}}, {{"P", {{"a"}}}});
  EXPECT_TRUE(*Counterfactual(kb, *ParseFormula("Q(a, b)"),
                              *ParseFormula("Q(a, b)"), Modality::kNecessarily));
  // ...or one mentioned by neither: empty under CWA, handled by extension.
  EXPECT_FALSE(*Counterfactual(kb, *ParseFormula("Q(a, b)"),
                               *ParseFormula("Zed(a)"), Modality::kPossibly));
}

// ---------------------------------------------------------------------------
// NestedCounterfactualExec (the serving-path chain): equivalent to the plain
// NestedCounterfactual under every executor-state configuration.

/// Property: with or without borrowed per-step caches and a pinned
/// solver/scratch — and with state reused *across* calls, the serving shape —
/// the served chain evaluation agrees with the plain one on random inputs.
TEST(CounterfactualTest, ExecChainEquivalentToPlainNestedCounterfactual) {
  std::mt19937_64 rng(19920615);
  testutil::RandomSentenceGenerator gen(&rng);
  std::uniform_int_distribution<int> chain_len(0, 2);
  std::bernoulli_distribution coin(0.5);

  // Session-pinned state, deliberately shared across all rounds (the serving
  // shape: one solver/scratch per session, one cache pair per sentence).
  sat::Solver solver;
  exec::WorldScratch scratch;
  std::vector<std::unique_ptr<exec::GroundingCache>> ground_caches;
  std::vector<std::unique_ptr<exec::CnfCache>> cnf_caches;
  size_t next_cache = 0;

  for (int round = 0; round < 25; ++round) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    int len = chain_len(rng);
    std::vector<Formula> antecedents;
    bool with_caches = coin(rng);
    for (int i = 0; i < len; ++i) antecedents.push_back(gen.Generate(2));
    // Build steps only after `antecedents` is final — ChainStep borrows.
    std::vector<ChainStep> steps;
    next_cache = 0;  // Formulas are fresh per round; fresh caches match them.
    for (const Formula& f : antecedents) {
      ChainStep step;
      step.antecedent = &f;
      if (with_caches) {
        if (next_cache == ground_caches.size()) {
          ground_caches.push_back(std::make_unique<exec::GroundingCache>());
          cnf_caches.push_back(std::make_unique<exec::CnfCache>());
        } else {
          // Reused slots would pair a cache with a *different* sentence, which
          // the cache-sharing contract forbids — always take a fresh pair.
          ground_caches[next_cache] = std::make_unique<exec::GroundingCache>();
          cnf_caches[next_cache] = std::make_unique<exec::CnfCache>();
        }
        step.ground_cache = ground_caches[next_cache].get();
        step.cnf_cache = cnf_caches[next_cache].get();
        ++next_cache;
      }
      steps.push_back(step);
    }
    Formula consequent = gen.Generate(2);
    Modality modality = coin(rng) ? Modality::kNecessarily : Modality::kPossibly;

    auto expected = NestedCounterfactual(kb, antecedents, consequent, modality);
    ASSERT_TRUE(expected.ok()) << expected.status().message();

    TauOptions options;
    if (coin(rng)) {
      options.solver = &solver;
      options.scratch = &scratch;
    }
    auto served =
        NestedCounterfactualExec(kb, steps, consequent, modality, options);
    ASSERT_TRUE(served.ok()) << served.status().message();
    EXPECT_EQ(*served, *expected)
        << "round " << round << " caches=" << with_caches;
  }
}

TEST(CounterfactualTest, ExecEmptyChainIsModalQuery) {
  Knowledgebase kb = RobotsKb();
  TauOptions options;
  EXPECT_TRUE(*NestedCounterfactualExec(kb, {}, *ParseFormula("R1(v) | R1(w)"),
                                        Modality::kNecessarily, options));
  EXPECT_FALSE(*NestedCounterfactualExec(kb, {}, *ParseFormula("R1(v)"),
                                         Modality::kNecessarily, options));
}

}  // namespace
}  // namespace kbt
