/// \file
/// The seven example transformations of §3, each verified against an independent
/// reference implementation (tests/testutil.h) — never against the engine itself.

#include <gtest/gtest.h>

#include <random>

#include "core/kbt.h"
#include "testutil.h"

namespace kbt {
namespace {

using testutil::DecodeEdges;
using testutil::EdgeRelation;
using testutil::Graph;
using testutil::KbAsStrings;

// ---------------------------------------------------------------------------
// Example 1: transitive closure. π2 τ_φ([(r)]) = [(s)] with s = r⁺.
// ---------------------------------------------------------------------------

class TransitiveClosureExample : public ::testing::TestWithParam<int> {};

TEST_P(TransitiveClosureExample, MatchesWarshall) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  Graph g = testutil::RandomGraph(5, 0.3, &rng);
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}}), {EdgeRelation(g)}));
  Engine engine;
  Knowledgebase out = *engine.Apply(
      "tau{ forall x1, x2, x3: (R2(x1, x2) & R1(x2, x3)) | R1(x1, x3) "
      "-> R2(x1, x3) } >> pi[R2]",
      kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(DecodeEdges(*out.databases()[0].RelationFor("R2")),
            testutil::TransitiveClosure(g.edges, g.n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitiveClosureExample, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Example 2: transitive reductions. π2 τ_{ψ∧χ}([(r1)]) = all transitive reducts.
// ---------------------------------------------------------------------------

const char* kReductionSentence =
    "(forall x1, x2: R2(x1, x2) -> R1(x1, x2)) & "
    "(forall x1, x3: (exists x2: R3(x1, x2) & R1(x2, x3)) | R1(x1, x3) "
    "<-> R3(x1, x3)) & "
    "(forall x1, x3: (exists x2: R3(x1, x2) & R2(x2, x3)) | R2(x1, x3) "
    "<-> R3(x1, x3))";

class TransitiveReductionExample : public ::testing::TestWithParam<int> {};

TEST_P(TransitiveReductionExample, EnumeratesAllReducts) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  Graph g = testutil::RandomDag(4, 0.5, &rng);
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}}), {EdgeRelation(g)}));
  Engine engine;
  Knowledgebase out = *engine.Apply(
      std::string("tau{ ") + kReductionSentence + " } >> pi[R2]", kb);

  std::set<std::set<std::pair<int, int>>> got;
  for (const Database& db : out) {
    got.insert(DecodeEdges(*db.RelationFor("R2")));
  }
  auto reference = testutil::TransitiveReductions(g.edges, g.n);
  std::set<std::set<std::pair<int, int>>> expected(reference.begin(),
                                                   reference.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitiveReductionExample, ::testing::Range(0, 6));

TEST(TransitiveReductionExample2, CyclicGraphCaveatDocumented) {
  // On CYCLIC graphs the paper's Example 2 sentence under-constrains R3: the
  // biconditional only forces R3 to be *a* fixpoint of the closure equation over
  // R2, not the least one, so a cycle in R2 can "self-justify" R3 edges that R2
  // does not actually generate. Witness: R1 = {02, 12, 21}. The subset
  // R2 = {12, 21} has TC(R2) = {11, 12, 21, 22} ≠ TC(R1), yet
  // (R2, R3 = TC(R1)) satisfies ψ ∧ χ because R3(0,1) and R3(0,2) justify each
  // other through the 1↔2 cycle. Minimality then prefers this smaller R2, so the
  // transformation returns {12, 21} instead of the true (and only)
  // closure-preserving subset {02, 12, 21}. We record the behavior here; the
  // construction is exact on DAGs (previous test), where justification chains
  // cannot cycle.
  Graph g;
  g.n = 3;
  g.edges = {{0, 2}, {1, 2}, {2, 1}};
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}}), {EdgeRelation(g)}));
  Engine engine;
  Knowledgebase out = *engine.Apply(
      std::string("tau{ ") + kReductionSentence + " } >> pi[R2]", kb);
  ASSERT_EQ(out.size(), 1u);
  std::set<std::pair<int, int>> spurious = {{1, 2}, {2, 1}};
  EXPECT_EQ(DecodeEdges(*out.databases()[0].RelationFor("R2")), spurious);
  // The honest reference answer differs:
  auto reference = testutil::TransitiveReductions(g.edges, g.n);
  ASSERT_EQ(reference.size(), 1u);
  EXPECT_EQ(reference[0], g.edges);
}

TEST(TransitiveReductionExample2, DiamondHasUniqueReduct) {
  // a→b→d, a→c→d plus shortcut a→d: the reduct drops only the shortcut.
  Graph g;
  g.n = 4;
  g.edges = {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3}};
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}}), {EdgeRelation(g)}));
  Engine engine;
  Knowledgebase out = *engine.Apply(
      std::string("tau{ ") + kReductionSentence + " } >> pi[R2]", kb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(DecodeEdges(*out.databases()[0].RelationFor("R2")),
            (std::set<std::pair<int, int>>{{0, 1}, {1, 3}, {0, 2}, {2, 3}}));
}

// ---------------------------------------------------------------------------
// Example 3: does a given edge set belong to every transitive reduction?
// ---------------------------------------------------------------------------

TEST(EdgesInEveryReductionExample, ZeroAryAnswerRelation) {
  // Cycle a↔b: two reducts of the 2-cycle {ab, ba} — actually the 2-cycle is its
  // own unique reduct; query edges {ab} ⊆ it. And for the diamond-with-shortcut
  // the shortcut edge is in no reduct.
  Graph g;
  g.n = 4;
  g.edges = {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 3}};
  auto run = [&](std::set<std::pair<int, int>> query_edges) {
    std::vector<Tuple> q;
    for (auto [a, b] : query_edges) {
      q.push_back(Tuple{Name(testutil::VertexName(a)), Name(testutil::VertexName(b))});
    }
    Knowledgebase kb = Knowledgebase::Singleton(*Database::Create(
        *Schema::Of({{"R1", 2}, {"R5", 2}}),
        {EdgeRelation(g), Relation(2, std::move(q))}));
    Engine engine;
    // % = π_{2,5} ⊓ τ_{ψ∧χ}; then τ_ζ with ζ: (R5 ⊆ R2) → R4; answer in R4.
    Knowledgebase out = *engine.Apply(
        std::string("tau{ ") + kReductionSentence +
            " } >> pi[R2, R5] >> glb >> "
            "tau{ (forall x1, x2: R5(x1, x2) -> R2(x1, x2)) -> R4() } >> pi[R4]",
        kb);
    bool answer = false;
    for (const Database& db : out) {
      if (db.RelationFor("R4")->Contains(Tuple())) answer = true;
    }
    return answer;
  };
  EXPECT_TRUE(run({{0, 1}, {2, 3}}));  // Both edges in the unique reduct.
  EXPECT_FALSE(run({{0, 3}}));         // The shortcut is in no reduct.
  EXPECT_TRUE(run({}));                // Empty set trivially contained.
}

// ---------------------------------------------------------------------------
// Example 4 (and Example 1.1): the Venus robots — hypothetical update.
// ---------------------------------------------------------------------------

TEST(RobotsExample, UpdateLeavesWOpen) {
  // kb = {<{v}>, <{w}>}: exactly one of V, W landed (noise garbled the message).
  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({has_v, has_w});

  // Learn that V has landed: τ_{R1(v)}(kb) = {<{v}>, <{v,w}>}.
  Knowledgebase updated = *Tau(*ParseFormula("R1(v)"), kb);
  EXPECT_EQ(KbAsStrings(updated),
            KbAsStrings(*Knowledgebase::FromDatabases(
                {has_v, *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}, {"w"}}}})})));

  // "If V landed, would W necessarily still be orbiting?" — no: ⊔ contains w.
  Knowledgebase lub = updated.Lub();
  ASSERT_EQ(lub.size(), 1u);
  EXPECT_TRUE(lub.databases()[0].RelationFor("R1")->Contains(Tuple{Name("w")}));
}

TEST(RobotsExample, RightNestedCounterfactual) {
  // (A > (B > C)) via nested insertions τ_A(τ_B(...)).
  Database db = *MakeDatabase({{"R1", 1}}, {});
  Knowledgebase kb = Knowledgebase::Singleton(db);
  Knowledgebase nested =
      *Tau(*ParseFormula("R1(v)"), *Tau(*ParseFormula("R1(w)"), kb));
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(*nested.databases()[0].RelationFor("R1"),
            MakeRelation(1, {{"v"}, {"w"}}));
}

// ---------------------------------------------------------------------------
// Example 5: monochromatic triangle (partition into two triangle-free halves).
// ---------------------------------------------------------------------------

bool MonochromaticTriangleViaTransformations(const Graph& g) {
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}}), {EdgeRelation(g)}));
  Engine engine;
  Pipeline pipeline;
  // τ_η: copy R1 into R4 (so later steps can detect changes to R1).
  pipeline.Tau(CopyFormula("R1", "R4", 2));
  // τ_{ν∧ρ}: partition into R2 ∪ R3, both antitransitive, everything symmetric.
  pipeline.Tau(
      "(forall x1, x2: R1(x1, x2) -> R2(x1, x2) | R3(x1, x2)) & "
      "(forall x1, x2, x3: R2(x1, x2) & R2(x2, x3) -> !R2(x1, x3)) & "
      "(forall x1, x2, x3: R3(x1, x2) & R3(x2, x3) -> !R3(x1, x3)) & "
      "(forall x1, x2: R1(x1, x2) <-> R1(x2, x1)) & "
      "(forall x1, x2: R2(x1, x2) <-> R2(x2, x1)) & "
      "(forall x1, x2: R3(x1, x2) <-> R3(x2, x1))");
  // τ_=: R5 := R4 \ R1 (non-empty iff R1 changed).
  pipeline.Tau(DifferenceFormula("R4", "R1", "R5", 2));
  // τ_ζ': R6 ↔ "R5 empty"; ⊔; π6.
  pipeline.Tau("R6() <-> (forall x1, x2: !R5(x1, x2))");
  pipeline.Lub().Project({"R6"});
  Knowledgebase out = *engine.Apply(pipeline, kb);
  for (const Database& db : out) {
    if (db.RelationFor("R6")->Contains(Tuple())) return true;
  }
  return false;
}

TEST(MonochromaticTriangleExample, MatchesBruteForceOnSmallGraphs) {
  // Triangle K3: 2-colorable without a monochromatic triangle.
  EXPECT_TRUE(MonochromaticTriangleViaTransformations(testutil::CompleteGraph(3)));
  // K4: still fine.
  EXPECT_TRUE(MonochromaticTriangleViaTransformations(testutil::CompleteGraph(4)));
  // 5-cycle: trivially triangle-free.
  Graph c5;
  c5.n = 5;
  for (int i = 0; i < 5; ++i) {
    c5.edges.insert({i, (i + 1) % 5});
    c5.edges.insert({(i + 1) % 5, i});
  }
  EXPECT_TRUE(MonochromaticTriangleViaTransformations(c5));
  // Cross-check the reference on the same inputs.
  EXPECT_TRUE(testutil::HasMonochromaticTriangleFreePartition(
      testutil::CompleteGraph(4).edges, 4));
}

TEST(MonochromaticTriangleExample, RandomGraphsAgreeWithBruteForce) {
  std::mt19937_64 rng(2025);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g;
    g.n = 4;
    std::bernoulli_distribution coin(0.6);
    for (int i = 0; i < g.n; ++i) {
      for (int j = i + 1; j < g.n; ++j) {
        if (coin(rng)) {
          g.edges.insert({i, j});
          g.edges.insert({j, i});
        }
      }
    }
    EXPECT_EQ(MonochromaticTriangleViaTransformations(g),
              testutil::HasMonochromaticTriangleFreePartition(g.edges, g.n))
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Example 6: parity of a unary relation.
// ---------------------------------------------------------------------------

bool ParityIsEvenViaTransformations(int n) {
  std::vector<Tuple> elems;
  for (int i = 0; i < n; ++i) elems.push_back(Tuple{Name("e" + std::to_string(i))});
  Knowledgebase kb = Knowledgebase::Singleton(*Database::Create(
      *Schema::Of({{"R1", 1}}), {Relation(1, std::move(elems))}));
  Engine engine;
  Pipeline pipeline;
  // ν': partition R1 into R2 ∪ R3.
  pipeline.Tau("forall x1: R1(x1) -> R2(x1) | R3(x1)");
  // φ.: R4 = R2 × R3.
  pipeline.Tau("forall x1, x2: R2(x1) & R3(x2) -> R4(x1, x2)");
  // ": R4 functional both ways (keeps maximal partial bijections).
  pipeline.Tau(
      "(forall x1, x2, x3: R4(x1, x2) & R4(x1, x3) -> x2 = x3) & "
      "(forall x1, x2, x3: R4(x2, x1) & R4(x3, x1) -> x2 = x3)");
  // λ: R5 = elements matched by R4.
  pipeline.Tau("forall x1, x2: R4(x1, x2) | R4(x2, x1) -> R5(x1)");
  // ι: R6 := R1 \ R5; even iff some world has R6 = ∅.
  pipeline.Tau(DifferenceFormula("R1", "R5", "R6", 1));
  Knowledgebase out = *engine.Apply(pipeline, kb);
  for (const Database& db : out) {
    if (db.RelationFor("R6")->empty()) return true;
  }
  return false;
}

TEST(ParityExample, MatchesArithmetic) {
  EXPECT_TRUE(ParityIsEvenViaTransformations(0));
  EXPECT_FALSE(ParityIsEvenViaTransformations(1));
  EXPECT_TRUE(ParityIsEvenViaTransformations(2));
  EXPECT_FALSE(ParityIsEvenViaTransformations(3));
  EXPECT_TRUE(ParityIsEvenViaTransformations(4));
}

// ---------------------------------------------------------------------------
// Example 7: k-clique detection (the core of the maximal-clique query).
// ---------------------------------------------------------------------------

/// Inserts the paper's clique sentence and reports whether some resulting world
/// keeps both input relations unchanged — which happens iff a k-clique exists.
bool HasCliqueOfSize(const Graph& g, int k) {
  std::vector<Tuple> seeds;
  for (int i = 0; i < k; ++i) seeds.push_back(Tuple{Name("s" + std::to_string(i))});
  Database input = *Database::Create(*Schema::Of({{"R1", 2}, {"R2", 1}}),
                                     {EdgeRelation(g), Relation(1, seeds)});
  // φ: R5 a bijection from the k-element seed set R2 onto the vertex set R4,
  // whose elements are pairwise adjacent in R1.
  Formula phi = *ParseFormula(
      "(forall x1: R2(x1) -> (exists x2: R5(x1, x2))) & "
      "(forall x1: R4(x1) -> (exists x2: R5(x2, x1))) & "
      "(forall x1, x2, x3: R5(x2, x1) & R5(x3, x1) -> x2 = x3) & "
      "(forall x1, x2, x3: R5(x1, x2) & R5(x1, x3) -> x2 = x3) & "
      "(forall x1, x2: R4(x1) & R4(x2) & !(x1 = x2) -> R1(x1, x2)) & "
      "(forall x1, x2: R5(x1, x2) -> R2(x1) & R4(x2))");
  Knowledgebase out = *Tau(phi, Knowledgebase::Singleton(input));
  for (const Database& db : out) {
    if (*db.RelationFor("R1") == *input.RelationFor("R1") &&
        *db.RelationFor("R2") == *input.RelationFor("R2")) {
      return true;
    }
  }
  return false;
}

TEST(MaxCliqueExample, DetectsCliquesOfEachSize) {
  // Triangle plus a pendant vertex: max clique 3.
  Graph g;
  g.n = 4;
  for (auto [a, b] : std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {0, 2},
                                                      {2, 3}}) {
    g.edges.insert({a, b});
    g.edges.insert({b, a});
  }
  ASSERT_EQ(testutil::MaxCliqueSize(g.edges, g.n), 3);
  EXPECT_TRUE(HasCliqueOfSize(g, 2));
  EXPECT_TRUE(HasCliqueOfSize(g, 3));
  EXPECT_FALSE(HasCliqueOfSize(g, 4));
}

TEST(MaxCliqueExample, MaximalityViaKPlusOne) {
  // "Largest clique has exactly size k" ⟺ k-clique exists and (k+1)-clique
  // does not (the paper reuses the query with renamed relations).
  Graph g = testutil::CompleteGraph(3);
  int max_k = testutil::MaxCliqueSize(g.edges, g.n);
  EXPECT_TRUE(HasCliqueOfSize(g, max_k));
  EXPECT_FALSE(HasCliqueOfSize(g, max_k + 1));
}

}  // namespace
}  // namespace kbt
