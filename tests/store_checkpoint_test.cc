/// \file
/// Tests for binary checkpoint files: encode/decode round trips on random
/// knowledgebases, the all-or-nothing corruption contract (any payload defect
/// is kDataLoss, unlike the WAL's tolerated torn tail), and the atomic
/// tmp+rename write path leaving no debris.

#include "store/checkpoint.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "rel/binary_io.h"
#include "store/fault_env.h"
#include "testutil.h"

namespace kbt::store {
namespace {

TEST(CheckpointTest, RoundTripsRandomKnowledgebases) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
    uint64_t lsn = trial * 37u;
    std::string image = EncodeCheckpoint(kb, lsn);
    auto decoded = DecodeCheckpoint(image);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->lsn, lsn);
    EXPECT_EQ(decoded->kb, kb);
    // Canonical values: re-encoding reproduces the exact bytes.
    EXPECT_EQ(EncodeCheckpoint(decoded->kb, decoded->lsn), image);
  }
}

TEST(CheckpointTest, EmptyKnowledgebaseRoundTrips) {
  Knowledgebase kb(*Schema::Of({{"Edge", 2}}));
  std::string image = EncodeCheckpoint(kb, 0);
  auto decoded = DecodeCheckpoint(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kb, kb);
  EXPECT_TRUE(decoded->kb.empty());
}

TEST(CheckpointTest, TruncationAtEveryBoundaryIsDataLoss) {
  std::mt19937_64 rng(1);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  std::string image = EncodeCheckpoint(kb, 9);
  for (size_t cut = 0; cut < image.size(); ++cut) {
    auto decoded = DecodeCheckpoint(std::string_view(image).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut at " << cut;
  }
  // Trailing bytes are a size mismatch, not silently ignored.
  auto decoded = DecodeCheckpoint(image + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, MagicVersionAndPayloadCorruptionAreDataLoss) {
  std::mt19937_64 rng(2);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  std::string image = EncodeCheckpoint(kb, 12);
  auto flipped = [&image](size_t i) {
    std::string bad = image;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    return bad;
  };
  // Magic (bytes 0..6) and version (byte 7).
  for (size_t i = 0; i < 8; ++i) {
    auto decoded = DecodeCheckpoint(flipped(i));
    ASSERT_FALSE(decoded.ok()) << "byte " << i;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
  // Every payload byte is under the CRC. (The lsn field is not — recovery
  // cross-checks it against the file name instead.)
  for (size_t i = 24; i < image.size(); ++i) {
    auto decoded = DecodeCheckpoint(flipped(i));
    ASSERT_FALSE(decoded.ok()) << "byte " << i;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(CheckpointTest, WriteIsAtomicAndLeavesNoTmpFile) {
  FaultInjectionEnv env;
  std::mt19937_64 rng(3);
  Knowledgebase kb = testutil::RandomKnowledgebase(&rng);
  ASSERT_TRUE(env.CreateDir("store").ok());
  ASSERT_TRUE(
      WriteCheckpoint(&env, "store", "store/checkpoint-5", kb, 5).ok());
  EXPECT_FALSE(env.FileExists("store/checkpoint-5.tmp"));
  auto decoded = ReadCheckpoint(&env, "store/checkpoint-5");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lsn, 5u);
  EXPECT_EQ(decoded->kb, kb);
  // The write is crash-proof the moment it returns: no further sync needed.
  env.Crash();
  env.RecoverFromCrash();
  decoded = ReadCheckpoint(&env, "store/checkpoint-5");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kb, kb);
}

TEST(CheckpointTest, CrashDuringWriteLeavesOldStateIntact) {
  std::mt19937_64 rng(4);
  Knowledgebase old_kb = testutil::RandomKnowledgebase(&rng);
  Knowledgebase new_kb = testutil::RandomKnowledgebase(&rng);
  // Crash at every write-side syscall of the checkpoint write; the real name
  // must afterwards hold either the old image or the complete new one.
  for (uint64_t op = 1;; ++op) {
    FaultInjectionEnv env;
    ASSERT_TRUE(env.CreateDir("store").ok());
    ASSERT_TRUE(
        WriteCheckpoint(&env, "store", "store/checkpoint-1", old_kb, 1).ok());
    uint64_t before = env.op_count();
    env.FailAt(op, FaultKind::kCrashBefore);
    Status s = WriteCheckpoint(&env, "store", "store/checkpoint-2", new_kb, 2);
    if (s.ok()) {
      // The failpoint was beyond the write's syscalls: the matrix is done.
      ASSERT_GT(before + op, env.op_count());
      break;
    }
    env.RecoverFromCrash();
    auto old_decoded = ReadCheckpoint(&env, "store/checkpoint-1");
    ASSERT_TRUE(old_decoded.ok()) << "op " << op;
    EXPECT_EQ(old_decoded->kb, old_kb);
    if (env.FileExists("store/checkpoint-2")) {
      auto new_decoded = ReadCheckpoint(&env, "store/checkpoint-2");
      ASSERT_TRUE(new_decoded.ok()) << "op " << op;
      EXPECT_EQ(new_decoded->kb, new_kb);
    }
  }
}

TEST(CheckpointTest, ReadReportsMissingFileAsNotFound) {
  FaultInjectionEnv env;
  auto decoded = ReadCheckpoint(&env, "store/none");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kbt::store
