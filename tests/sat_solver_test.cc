#include "sat/solver.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace kbt::sat {
namespace {

TEST(SatSolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SatSolverTest, UnitsPropagate) {
  Solver s;
  Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({MkLit(a)});
  s.AddClause({MkLit(a, true), MkLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(SatSolverTest, DirectContradictionIsUnsat) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({MkLit(a)});
  EXPECT_FALSE(s.AddClause({MkLit(a, true)}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_TRUE(s.inconsistent());
}

TEST(SatSolverTest, AssertUnitsAtRootMatchesUnitClauses) {
  // Batched root units must reach the same fixpoint as one-at-a-time unit
  // AddClause calls: same satisfiability, same final model.
  Solver batched, classic;
  std::vector<Var> bv, cv;
  for (int i = 0; i < 4; ++i) {
    bv.push_back(batched.NewVar());
    cv.push_back(classic.NewVar());
  }
  for (Solver* s : {&batched, &classic}) {
    std::vector<Var>& v = s == &batched ? bv : cv;
    s->AddClause({MkLit(v[0], true), MkLit(v[2])});
    s->AddClause({MkLit(v[1], true), MkLit(v[2], true), MkLit(v[3])});
  }
  EXPECT_TRUE(batched.AssertUnitsAtRoot({MkLit(bv[0]), MkLit(bv[1])}));
  EXPECT_TRUE(classic.AddClause({MkLit(cv[0])}));
  EXPECT_TRUE(classic.AddClause({MkLit(cv[1])}));
  ASSERT_EQ(batched.Solve(), SolveResult::kSat);
  ASSERT_EQ(classic.Solve(), SolveResult::kSat);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batched.ModelValue(bv[i]), classic.ModelValue(cv[i])) << i;
  }
}

TEST(SatSolverTest, AssertUnitsAtRootDetectsConflicts) {
  {
    // Directly contradictory units in one batch.
    Solver s;
    Var a = s.NewVar();
    EXPECT_FALSE(s.AssertUnitsAtRoot({MkLit(a), MkLit(a, true)}));
    EXPECT_TRUE(s.inconsistent());
    EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  }
  {
    // Conflict only reachable through propagation across the batch.
    Solver s;
    Var a = s.NewVar(), b = s.NewVar();
    s.AddClause({MkLit(a, true), MkLit(b, true)});
    EXPECT_FALSE(s.AssertUnitsAtRoot({MkLit(a), MkLit(b)}));
    EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  }
  {
    // Units already true are absorbed; the batch stays satisfiable.
    Solver s;
    Var a = s.NewVar();
    s.AddClause({MkLit(a)});
    EXPECT_TRUE(s.AssertUnitsAtRoot({MkLit(a), MkLit(a)}));
    ASSERT_EQ(s.Solve(), SolveResult::kSat);
    EXPECT_TRUE(s.ModelValue(a));
  }
}

TEST(SatSolverTest, TautologyAndDuplicateLiterals) {
  Solver s;
  Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({MkLit(a), MkLit(a, true)});        // Tautology: dropped.
  s.AddClause({MkLit(b), MkLit(b), MkLit(b)});    // Collapses to unit.
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(SatSolverTest, ModelsSatisfyAllClauses) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 6; ++i) v.push_back(s.NewVar());
  std::vector<std::vector<Lit>> clauses = {
      {MkLit(v[0]), MkLit(v[1], true), MkLit(v[2])},
      {MkLit(v[3], true), MkLit(v[4])},
      {MkLit(v[1]), MkLit(v[5], true)},
      {MkLit(v[0], true), MkLit(v[3])},
      {MkLit(v[2], true), MkLit(v[5])},
  };
  for (auto& c : clauses) s.AddClause(c);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (const auto& c : clauses) {
    bool sat = false;
    for (Lit l : c) sat |= (s.ModelValue(VarOf(l)) != IsNegated(l));
    EXPECT_TRUE(sat);
  }
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT
/// and hard for resolution; exercises conflict analysis and learning.
void AddPigeonhole(Solver* s, int pigeons, int holes,
                   std::vector<std::vector<Var>>* grid) {
  grid->assign(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) (*grid)[p][h] = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) some.push_back(MkLit((*grid)[p][h]));
    s->AddClause(some);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddClause({MkLit((*grid)[p1][h], true), MkLit((*grid)[p2][h], true)});
      }
    }
  }
}

TEST(SatSolverTest, PigeonholeUnsat) {
  for (int n = 2; n <= 5; ++n) {
    Solver s;
    std::vector<std::vector<Var>> grid;
    AddPigeonhole(&s, n + 1, n, &grid);
    EXPECT_EQ(s.Solve(), SolveResult::kUnsat) << "PHP(" << n + 1 << "," << n << ")";
  }
}

TEST(SatSolverTest, PigeonholeExactFitSat) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  AddPigeonhole(&s, 4, 4, &grid);
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SatSolverTest, AssumptionsRestrictWithoutCommitting) {
  Solver s;
  Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({MkLit(a), MkLit(b)});
  ASSERT_EQ(s.Solve({MkLit(a, true)}), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  // Contradictory assumptions: UNSAT under them, SAT afterwards.
  EXPECT_EQ(s.Solve({MkLit(a, true), MkLit(b, true)}), SolveResult::kUnsat);
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.inconsistent());
}

TEST(SatSolverTest, AssumptionConflictsWithUnit) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({MkLit(a)});
  EXPECT_EQ(s.Solve({MkLit(a, true)}), SolveResult::kUnsat);
  EXPECT_EQ(s.Solve({MkLit(a)}), SolveResult::kSat);
}

TEST(SatSolverTest, IncrementalClauseAdditionAfterSolve) {
  Solver s;
  Var a = s.NewVar(), b = s.NewVar();
  s.AddClause({MkLit(a), MkLit(b)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  // Block both single-literal solutions step by step.
  s.AddClause({MkLit(a, true)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  s.AddClause({MkLit(b, true)});
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatSolverTest, ActivationLiteralPattern) {
  // The μ engine retires guarded clauses by asserting ¬act.
  Solver s;
  Var x = s.NewVar(), act = s.NewVar();
  s.AddClause({MkLit(act, true), MkLit(x)});  // act → x.
  ASSERT_EQ(s.Solve({MkLit(act)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
  s.AddClause({MkLit(act, true)});  // Retire the guard.
  ASSERT_EQ(s.Solve({MkLit(x, true)}), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(x));
}

/// Brute-force satisfiability for cross-checking.
bool BruteForceSat(int num_vars, const std::vector<std::vector<Lit>>& clauses) {
  for (uint32_t mask = 0; mask < (uint32_t{1} << num_vars); ++mask) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (Lit l : c) {
        bool value = (mask >> VarOf(l)) & 1;
        if (value != IsNegated(l)) sat = true;
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class Random3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  constexpr int kVars = 10;
  std::uniform_int_distribution<int> var(0, kVars - 1);
  std::bernoulli_distribution sign(0.5);
  // Sweep clause counts through the under- and over-constrained regimes.
  for (int m : {20, 35, 43, 50, 70}) {
    Solver s;
    for (int i = 0; i < kVars; ++i) s.NewVar();
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) clause.push_back(MkLit(var(rng), sign(rng)));
      clauses.push_back(clause);
      s.AddClause(clause);
    }
    bool expected = BruteForceSat(kVars, clauses);
    SolveResult got = s.Solve();
    EXPECT_EQ(got == SolveResult::kSat, expected) << "m=" << m;
    if (got == SolveResult::kSat) {
      for (const auto& c : clauses) {
        bool sat = false;
        for (Lit l : c) sat |= (s.ModelValue(VarOf(l)) != IsNegated(l));
        EXPECT_TRUE(sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest, ::testing::Range(0, 20));

TEST(SatSolverTest, ClauseArenaGrowsUnderPropagation) {
  // Interleave clause addition (arena growth and reallocation) with solving and
  // unit propagation: a long implication spine a_0 → a_1 → ... → a_n plus side
  // clauses. Every intermediate Solve must propagate through clauses that moved
  // when the arena reallocated.
  Solver s;
  constexpr int kChain = 2000;
  std::vector<Var> v;
  for (int i = 0; i < kChain; ++i) {
    v.push_back(s.NewVar());
    s.SetPhase(v.back(), false);  // Interim models leave the chain all-false.
  }
  for (int i = 0; i + 1 < kChain; ++i) {
    s.AddClause({MkLit(v[static_cast<size_t>(i)], true),
                 MkLit(v[static_cast<size_t>(i + 1)])});
    // Ternary filler so clause sizes vary across the arena.
    if (i + 2 < kChain) {
      s.AddClause({MkLit(v[static_cast<size_t>(i)], true),
                   MkLit(v[static_cast<size_t>(i + 1)], true),
                   MkLit(v[static_cast<size_t>(i + 2)])});
    }
    if (i % 500 == 0) {
      ASSERT_EQ(s.Solve(), SolveResult::kSat);
    }
  }
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(v[kChain - 1]));
  EXPECT_GT(s.num_problem_clauses(), 3000u);
  EXPECT_GT(s.arena_words(), 10000u);
  // Assert the chain root: the unit cascades through every stored implication
  // at the root level, walking the whole (repeatedly reallocated) arena.
  s.AddClause({MkLit(v[0])});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int j = 0; j < kChain; ++j) {
    ASSERT_TRUE(s.ModelValue(v[static_cast<size_t>(j)])) << "chain " << j;
  }
}

TEST(SatSolverTest, DbReductionKeepsReasonsAndCorrectness) {
  // Level-0 trail literals with clause reasons must survive reduction: seed a
  // few root implications, then force reductions with a tiny learned budget on
  // a resolution-hard instance. Debug builds additionally assert inside the
  // garbage collector that no reason clause is deleted.
  Solver s;
  Var r0 = s.NewVar(), r1 = s.NewVar();
  // Store the binary first (both vars unassigned, so it is attached rather
  // than simplified away), then assert r0: propagation enqueues r1 at the root
  // with the stored clause as its reason.
  s.AddClause({MkLit(r0, true), MkLit(r1)});
  s.AddClause({MkLit(r0)});
  ASSERT_EQ(s.num_problem_clauses(), 1u);
  std::vector<std::vector<Var>> grid;
  AddPigeonhole(&s, 7, 6, &grid);
  s.SetReduceLimit(64);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().db_reductions, 0u);
  EXPECT_GT(s.stats().learned_deleted, 0u);
}

TEST(SatSolverTest, DbReductionPreservesSatAnswers) {
  // Random satisfiable-leaning instances solved with an aggressive reduction
  // budget must still agree with brute force, and returned models must check.
  std::mt19937_64 rng(20260729);
  constexpr int kVars = 10;
  std::uniform_int_distribution<int> var(0, kVars - 1);
  std::bernoulli_distribution sign(0.5);
  for (int trial = 0; trial < 10; ++trial) {
    Solver s;
    s.SetReduceLimit(16);
    for (int i = 0; i < kVars; ++i) s.NewVar();
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 45; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) clause.push_back(MkLit(var(rng), sign(rng)));
      clauses.push_back(clause);
      s.AddClause(clause);
    }
    bool expected = BruteForceSat(kVars, clauses);
    SolveResult got = s.Solve();
    EXPECT_EQ(got == SolveResult::kSat, expected) << "trial=" << trial;
    if (got == SolveResult::kSat) {
      for (const auto& c : clauses) {
        bool sat = false;
        for (Lit l : c) sat |= (s.ModelValue(VarOf(l)) != IsNegated(l));
        EXPECT_TRUE(sat);
      }
    }
  }
}

TEST(SatSolverTest, ClauseCountersTrackArenaContents) {
  Solver s;
  Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  EXPECT_EQ(s.num_clauses(), 0u);
  s.AddClause({MkLit(a), MkLit(b)});
  s.AddClause({MkLit(a, true), MkLit(b), MkLit(c)});
  EXPECT_EQ(s.num_problem_clauses(), 2u);
  s.AddClause({MkLit(c)});  // Unit: enqueued at the root, never stored.
  EXPECT_EQ(s.num_problem_clauses(), 2u);
  EXPECT_EQ(s.num_learned_clauses(), 0u);
  // Header + lits per clause: (1 + 2) + (1 + 3).
  EXPECT_EQ(s.arena_words(), 7u);
}

TEST(SatSolverTest, StatsAreTracked) {
  Solver s;
  std::vector<std::vector<Var>> grid;
  AddPigeonhole(&s, 5, 4, &grid);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_EQ(s.stats().solve_calls, 1u);
}

TEST(SatSolverTest, LbdReductionCountsGlueAndStaysCorrect) {
  // LBD-aware reduction: glue clauses (LBD ≤ 2) are counted at learn time and
  // survive every reduction pass, while high-LBD low-activity clauses go
  // first. Observable contract: on a conflict-heavy UNSAT instance with an
  // aggressive budget, reductions fire, deletions happen, glue clauses were
  // learned — and the answer is still UNSAT.
  Solver s;
  std::vector<std::vector<Var>> grid;
  AddPigeonhole(&s, 7, 6, &grid);
  s.SetReduceLimit(32);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().db_reductions, 0u);
  EXPECT_GT(s.stats().learned_deleted, 0u);
  EXPECT_GT(s.stats().glue_clauses, 0u);
  // Glue is a subset of everything learned.
  EXPECT_LE(s.stats().glue_clauses, s.stats().learned_clauses +
                                        s.stats().conflicts /* unit learns */);
}

TEST(SatSolverTest, LbdReductionPreservesSatAnswersUnderTinyBudget) {
  // The LBD ranking must only affect *which* learned clauses are dropped,
  // never correctness: random instances with constant reductions still agree
  // with brute force.
  std::mt19937_64 rng(20260730);
  constexpr int kVars = 10;
  std::uniform_int_distribution<int> var(0, kVars - 1);
  std::bernoulli_distribution sign(0.5);
  for (int trial = 0; trial < 10; ++trial) {
    Solver s;
    s.SetReduceLimit(8);
    for (int i = 0; i < kVars; ++i) s.NewVar();
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 44; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) clause.push_back(MkLit(var(rng), sign(rng)));
      clauses.push_back(clause);
      s.AddClause(clause);
    }
    bool expected = BruteForceSat(kVars, clauses);
    SolveResult got = s.Solve();
    EXPECT_EQ(got == SolveResult::kSat, expected) << "trial=" << trial;
    if (got == SolveResult::kSat) {
      for (const auto& c : clauses) {
        bool sat = false;
        for (Lit l : c) sat |= (s.ModelValue(VarOf(l)) != IsNegated(l));
        EXPECT_TRUE(sat);
      }
    }
  }
}

// --- Assumption-trail reuse (SolverOptions::reuse_assumption_trail). ---

/// True iff the model of `s` satisfies every clause and every assumption.
void CheckModel(const Solver& s, const std::vector<std::vector<Lit>>& clauses,
                const std::vector<Lit>& assumptions) {
  for (const auto& c : clauses) {
    bool sat = false;
    for (Lit l : c) sat |= (s.ModelValue(VarOf(l)) != IsNegated(l));
    EXPECT_TRUE(sat);
  }
  for (Lit l : assumptions) {
    EXPECT_TRUE(s.ModelValue(VarOf(l)) != IsNegated(l));
  }
}

TEST(SatTrailReuseTest, AgreesWithClassicAndFreshAcrossIncrementalSequences) {
  // The equivalence property: over random incremental sequences — clause
  // additions interleaved with Solve calls whose assumption vectors evolve by
  // small tail deltas (the μ descent shape) — a trail-reusing solver, a
  // classic solver, and a from-scratch solver per query all agree on
  // SAT/UNSAT, and every reported model checks. Across the trials the reusing
  // solver must actually have reused levels, or the test is vacuous.
  uint64_t total_reused = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::mt19937_64 rng(static_cast<uint64_t>(trial) * 104729 + 7);
    constexpr int kVars = 12;
    std::uniform_int_distribution<int> var(0, kVars - 1);
    std::bernoulli_distribution sign(0.5);
    std::uniform_int_distribution<int> mutate(0, 2);

    Solver classic;
    Solver reusing;
    SolverOptions on;
    on.reuse_assumption_trail = true;
    reusing.set_options(on);
    for (int i = 0; i < kVars; ++i) {
      classic.NewVar();
      reusing.NewVar();
    }
    std::vector<std::vector<Lit>> clauses;
    auto add_clause = [&](const std::vector<Lit>& c) {
      clauses.push_back(c);
      classic.AddClause(c);
      reusing.AddClause(c);
    };
    for (int c = 0; c < 30; ++c) {
      add_clause({MkLit(var(rng), sign(rng)), MkLit(var(rng), sign(rng)),
                  MkLit(var(rng), sign(rng))});
    }

    // Assumption pins over distinct variables, mutated mostly at the tail so
    // consecutive vectors share prefixes.
    std::vector<Lit> assumptions;
    for (int v = 0; v < 5; ++v) assumptions.push_back(MkLit(v, sign(rng)));
    for (int round = 0; round < 12; ++round) {
      switch (mutate(rng)) {
        case 0:  // Flip the last pin.
          if (!assumptions.empty()) assumptions.back() = Negate(assumptions.back());
          break;
        case 1:  // Append a pin.
          assumptions.push_back(MkLit(var(rng), sign(rng)));
          break;
        default:  // Drop the tail pin.
          if (!assumptions.empty()) assumptions.pop_back();
          break;
      }
      SolveResult rc = classic.Solve(assumptions);
      SolveResult rr = reusing.Solve(assumptions);
      EXPECT_EQ(rc, rr) << "trial " << trial << " round " << round;
      // Cross-check against a from-scratch solver over the same clause set.
      Solver fresh;
      for (int i = 0; i < kVars; ++i) fresh.NewVar();
      for (const auto& c : clauses) fresh.AddClause(c);
      EXPECT_EQ(fresh.Solve(assumptions), rr)
          << "trial " << trial << " round " << round;
      if (rr == SolveResult::kSat) {
        CheckModel(reusing, clauses, assumptions);
        CheckModel(classic, clauses, assumptions);
      }
      // Occasionally grow the formula between solves — with a retained trail
      // this exercises the trail-aware AddClause placement.
      if (round % 3 == 1) {
        add_clause({MkLit(var(rng), sign(rng)), MkLit(var(rng), sign(rng))});
      }
      // (inconsistent() may flip at different rounds in the two solvers — it
      // reflects learned root facts, which depend on the search trajectory —
      // but Solve answers must keep agreeing either way.)
    }
    total_reused += reusing.stats().reused_assumption_levels;
    EXPECT_EQ(classic.stats().reused_assumption_levels, 0u);
  }
  EXPECT_GT(total_reused, 0u);
}

TEST(SatTrailReuseTest, ReusesSharedPrefixAndSavesPropagations) {
  // A long implication spine pinned by assumptions: re-solving with only the
  // tail assumption changed must retain every shared level (and the propagated
  // chain literals behind them) instead of re-propagating from scratch.
  Solver s;
  SolverOptions on;
  on.reuse_assumption_trail = true;
  s.set_options(on);
  constexpr int kChain = 50;
  std::vector<Var> v;
  for (int i = 0; i < kChain; ++i) v.push_back(s.NewVar());
  Var tail0 = s.NewVar(), tail1 = s.NewVar();
  for (int i = 0; i + 1 < kChain; ++i) {
    s.AddClause({MkLit(v[static_cast<size_t>(i)], true),
                 MkLit(v[static_cast<size_t>(i + 1)])});
  }
  std::vector<Lit> assumptions = {MkLit(v[0]), MkLit(tail0)};
  ASSERT_EQ(s.Solve(assumptions), SolveResult::kSat);
  EXPECT_EQ(s.stats().reused_assumption_levels, 0u);
  // Same prefix (v[0] pin with its whole propagated chain), new tail.
  assumptions.back() = MkLit(tail1);
  ASSERT_EQ(s.Solve(assumptions), SolveResult::kSat);
  EXPECT_EQ(s.stats().reused_assumption_levels, 1u);
  // The reused v[0] level carries the chain: ≥ kChain literals not re-enqueued.
  EXPECT_GE(s.stats().saved_propagations, static_cast<uint64_t>(kChain));
  for (int i = 0; i < kChain; ++i) {
    EXPECT_TRUE(s.ModelValue(v[static_cast<size_t>(i)]));
  }
  // Identical vector: both levels reused.
  ASSERT_EQ(s.Solve(assumptions), SolveResult::kSat);
  EXPECT_EQ(s.stats().reused_assumption_levels, 3u);
}

TEST(SatTrailReuseTest, ResetClearsRetainedTrailAndReuseState) {
  SolverOptions on;
  on.reuse_assumption_trail = true;
  auto run_chain = [](Solver* s) {
    std::vector<Var> vars;
    for (int i = 0; i < 6; ++i) vars.push_back(s->NewVar());
    s->AddClause({MkLit(vars[0], true), MkLit(vars[1])});
    s->AddClause({MkLit(vars[1], true), MkLit(vars[2])});
    std::vector<SolveResult> results;
    results.push_back(s->Solve({MkLit(vars[0]), MkLit(vars[3])}));
    results.push_back(s->Solve({MkLit(vars[0]), MkLit(vars[3], true)}));
    results.push_back(s->Solve({MkLit(vars[0]), MkLit(vars[3], true),
                                MkLit(vars[4])}));
    return results;
  };
  Solver s;
  s.set_options(on);
  std::vector<SolveResult> first = run_chain(&s);
  EXPECT_GT(s.stats().reused_assumption_levels, 0u);
  s.Reset();
  // Reset keeps the option but drops trail, stats and the saved vector: the
  // replay behaves exactly like the first run, with no stale reuse carried in.
  EXPECT_TRUE(s.options().reuse_assumption_trail);
  EXPECT_EQ(s.stats().reused_assumption_levels, 0u);
  std::vector<SolveResult> second = run_chain(&s);
  EXPECT_EQ(first, second);
}

TEST(SatTrailReuseTest, InitFromFrozenClearsRetainedTrailAndReuseState) {
  // Freeze an encoded prefix, fork it into a reusing solver, run an assumption
  // chain, then re-fork: the replay must match solve for solve, and the first
  // solve after the re-fork must not reuse the (dead) previous trail.
  Solver base;
  Var a = base.NewVar(), b = base.NewVar(), c = base.NewVar();
  base.AddClause({MkLit(a, true), MkLit(b)});
  base.AddClause({MkLit(b, true), MkLit(c)});
  Solver::Frozen frozen;
  base.Freeze(&frozen);

  SolverOptions on;
  on.reuse_assumption_trail = true;
  Solver s;
  s.set_options(on);
  auto chain = [&](Solver* solver) {
    std::vector<SolveResult> results;
    results.push_back(solver->Solve({MkLit(a)}));
    results.push_back(solver->Solve({MkLit(a), MkLit(c)}));
    results.push_back(solver->Solve({MkLit(a), MkLit(c, true)}));
    return results;
  };
  s.InitFromFrozen(frozen);
  std::vector<SolveResult> first = chain(&s);
  EXPECT_EQ(first, (std::vector<SolveResult>{SolveResult::kSat,
                                             SolveResult::kSat,
                                             SolveResult::kUnsat}));
  uint64_t reused_after_first = s.stats().reused_assumption_levels;
  EXPECT_GT(reused_after_first, 0u);

  s.InitFromFrozen(frozen);
  EXPECT_EQ(s.stats().reused_assumption_levels, 0u);
  EXPECT_EQ(s.Solve({MkLit(a)}), SolveResult::kSat);
  // No stale last-assumptions: the re-forked solver starts from scratch.
  EXPECT_EQ(s.stats().reused_assumption_levels, 0u);
  EXPECT_EQ(s.Solve({MkLit(a), MkLit(c)}), SolveResult::kSat);
  EXPECT_EQ(s.stats().reused_assumption_levels, 1u);
  EXPECT_EQ(s.Solve({MkLit(a), MkLit(c, true)}), SolveResult::kUnsat);
}

TEST(SatTrailReuseTest, GuardedDescentPatternWithBlockingClauses) {
  // The μ engine's exact call shape under reuse: solve under pins + a fresh
  // activation literal placed last, add blocking/guard clauses while the trail
  // is retained, retire guards late via units. Enumerating all models of
  // (x0 ∨ x1) ∧ (x2) this way must visit each assignment exactly once.
  SolverOptions on;
  on.reuse_assumption_trail = true;
  Solver s;
  s.set_options(on);
  Var x0 = s.NewVar(), x1 = s.NewVar(), x2 = s.NewVar();
  s.AddClause({MkLit(x0), MkLit(x1)});
  s.AddClause({MkLit(x2)});
  int models = 0;
  std::vector<Lit> block;
  while (s.Solve({MkLit(x2)}) == SolveResult::kSat) {
    ++models;
    ASSERT_LE(models, 3);  // Exactly the 3 satisfying assignments of (x0|x1).
    EXPECT_TRUE(s.ModelValue(x2));
    block.clear();
    block.push_back(MkLit(x0, s.ModelValue(x0)));
    block.push_back(MkLit(x1, s.ModelValue(x1)));
    s.AddClause(block);  // Added with the assumption trail retained.
  }
  EXPECT_EQ(models, 3);
}

}  // namespace
}  // namespace kbt::sat
