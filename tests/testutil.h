#ifndef KBT_TESTS_TESTUTIL_H_
#define KBT_TESTS_TESTUTIL_H_

/// \file
/// Shared test utilities: independent reference implementations of the graph
/// notions the paper's §3 examples compute through transformations (so the tests
/// never compare the engine against itself), plus random generators for databases
/// and sentences used by the property tests.

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/kbt.h"

namespace kbt::testutil {

/// A small directed graph over integer vertices 0..n-1.
struct Graph {
  int n = 0;
  std::set<std::pair<int, int>> edges;

  bool Has(int a, int b) const { return edges.count({a, b}) > 0; }
};

/// Vertex name "v<i>".
inline std::string VertexName(int i) { return "v" + std::to_string(i); }

/// Edge relation tuples of `g` as a Relation of arity 2.
inline Relation EdgeRelation(const Graph& g) {
  std::vector<Tuple> tuples;
  for (auto [a, b] : g.edges) {
    tuples.push_back(Tuple{Name(VertexName(a)), Name(VertexName(b))});
  }
  return Relation(2, std::move(tuples));
}

/// Decodes a binary relation over vertex names back into edge pairs.
inline std::set<std::pair<int, int>> DecodeEdges(const Relation& r) {
  std::set<std::pair<int, int>> out;
  for (TupleView t : r) {
    std::string a = NameOf(t[0]);
    std::string b = NameOf(t[1]);
    out.insert({std::stoi(a.substr(1)), std::stoi(b.substr(1))});
  }
  return out;
}

/// Reference transitive closure (Warshall).
inline std::set<std::pair<int, int>> TransitiveClosure(
    const std::set<std::pair<int, int>>& edges, int n) {
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (auto [a, b] : edges) reach[a][b] = true;
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (reach[i][k] && reach[k][j]) reach[i][j] = true;
      }
    }
  }
  std::set<std::pair<int, int>> out;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (reach[i][j]) out.insert({i, j});
    }
  }
  return out;
}

/// All inclusion-minimal subsets of `edges` with the same transitive closure —
/// the transitive reductions of Example 2, by brute force (use tiny graphs).
inline std::vector<std::set<std::pair<int, int>>> TransitiveReductions(
    const std::set<std::pair<int, int>>& edges, int n) {
  std::vector<std::pair<int, int>> edge_list(edges.begin(), edges.end());
  auto closure = TransitiveClosure(edges, n);
  std::vector<std::set<std::pair<int, int>>> preserving;
  for (uint32_t mask = 0; mask < (uint32_t{1} << edge_list.size()); ++mask) {
    std::set<std::pair<int, int>> subset;
    for (size_t i = 0; i < edge_list.size(); ++i) {
      if ((mask >> i) & 1) subset.insert(edge_list[i]);
    }
    if (TransitiveClosure(subset, n) == closure) preserving.push_back(subset);
  }
  std::vector<std::set<std::pair<int, int>>> minimal;
  for (const auto& s : preserving) {
    bool is_minimal = true;
    for (const auto& t : preserving) {
      if (t != s && std::includes(s.begin(), s.end(), t.begin(), t.end())) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(s);
  }
  return minimal;
}

/// True iff the undirected graph (given as a symmetric edge set) admits a
/// partition of its edges into two triangle-free ("antitransitive") halves —
/// the monochromatic-triangle property of Example 5, by brute force.
inline bool HasMonochromaticTriangleFreePartition(
    const std::set<std::pair<int, int>>& sym_edges, int n) {
  (void)n;
  std::vector<std::pair<int, int>> undirected;
  for (auto [a, b] : sym_edges) {
    if (a < b) undirected.push_back({a, b});
  }
  auto triangle_free = [&](const std::set<std::pair<int, int>>& half) {
    for (auto [a, b] : half) {
      for (auto [c, d] : half) {
        if (b != c) continue;
        if (half.count({a, d}) > 0 || half.count({d, a}) > 0) {
          // a-b, b-d, a-d all in the same half: monochromatic triangle.
          return false;
        }
      }
    }
    return true;
  };
  for (uint32_t mask = 0; mask < (uint32_t{1} << undirected.size()); ++mask) {
    std::set<std::pair<int, int>> red, blue;
    for (size_t i = 0; i < undirected.size(); ++i) {
      auto [a, b] = undirected[i];
      if ((mask >> i) & 1) {
        red.insert({a, b});
        red.insert({b, a});
      } else {
        blue.insert({a, b});
        blue.insert({b, a});
      }
    }
    if (triangle_free(red) && triangle_free(blue)) return true;
  }
  return false;
}

/// Size of the largest clique, by brute force (use tiny graphs). Edges symmetric.
inline int MaxCliqueSize(const std::set<std::pair<int, int>>& sym_edges, int n) {
  int best = 0;
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    std::vector<int> vs;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) vs.push_back(i);
    }
    bool clique = true;
    for (size_t i = 0; i < vs.size() && clique; ++i) {
      for (size_t j = i + 1; j < vs.size() && clique; ++j) {
        if (sym_edges.count({vs[i], vs[j]}) == 0) clique = false;
      }
    }
    if (clique) best = std::max<int>(best, static_cast<int>(vs.size()));
  }
  return best;
}

/// Random directed graph with edge probability p.
inline Graph RandomGraph(int n, double p, std::mt19937_64* rng) {
  Graph g;
  g.n = n;
  std::bernoulli_distribution coin(p);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(*rng)) g.edges.insert({i, j});
    }
  }
  return g;
}

/// Random DAG (edges only i → j with i < j) with edge probability p. Example 2's
/// sentence characterizes transitive reductions faithfully on DAGs only — see
/// paper_examples_test.cc for the cyclic caveat.
inline Graph RandomDag(int n, double p, std::mt19937_64* rng) {
  Graph g;
  g.n = n;
  std::bernoulli_distribution coin(p);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(*rng)) g.edges.insert({i, j});
    }
  }
  return g;
}

/// Complete undirected graph K_n as a symmetric directed edge set.
inline Graph CompleteGraph(int n) {
  Graph g;
  g.n = n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) g.edges.insert({i, j});
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Random inputs for property tests.
// ---------------------------------------------------------------------------

/// Fixed three-constant domain used by the randomized μ/τ tests; every generated
/// database stores all three in a unary Dom relation so the active domain B is
/// constant across members and updates (see tau_postulates_test.cc).
inline const std::vector<std::string>& TestConstants() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"a", "b", "c"};
  return *names;
}

/// Schema used by the random generators: Dom/1 (always full), P/1, Q/2.
inline Schema TestSchema() {
  return *Schema::Of({{"Dom", 1}, {"P", 1}, {"Q", 2}});
}

/// Random database over TestSchema with Dom = {a,b,c} and random P, Q.
inline Database RandomDatabase(std::mt19937_64* rng) {
  std::bernoulli_distribution coin(0.5);
  std::vector<Tuple> dom, p, q;
  for (const std::string& x : TestConstants()) {
    dom.push_back(Tuple{Name(x)});
    if (coin(*rng)) p.push_back(Tuple{Name(x)});
    for (const std::string& y : TestConstants()) {
      if (coin(*rng)) q.push_back(Tuple{Name(x), Name(y)});
    }
  }
  Database db(TestSchema());
  db = *db.WithRelation("Dom", Relation(1, std::move(dom)));
  db = *db.WithRelation("P", Relation(1, std::move(p)));
  db = *db.WithRelation("Q", Relation(2, std::move(q)));
  return db;
}

/// Random knowledgebase of 1..3 members over TestSchema.
inline Knowledgebase RandomKnowledgebase(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> count(1, 3);
  std::vector<Database> dbs;
  int k = count(*rng);
  for (int i = 0; i < k; ++i) dbs.push_back(RandomDatabase(rng));
  return *Knowledgebase::FromDatabases(std::move(dbs));
}

/// Random sentence over the relations P/1, Q/2 (never Dom, so Dom stays quiet and
/// pins the active domain), constants {a,b,c}, with bounded depth and both
/// quantifiers. `new_relation_prob` adds atoms over a fresh relation N/1 so some
/// updates extend the schema.
class RandomSentenceGenerator {
 public:
  RandomSentenceGenerator(std::mt19937_64* rng, double new_relation_prob = 0.0)
      : rng_(rng), new_relation_prob_(new_relation_prob) {}

  Formula Generate(int max_depth = 3) { return Gen(max_depth, {}); }

 private:
  Term RandomTerm(const std::vector<Symbol>& scope) {
    std::uniform_int_distribution<size_t> pick(0, scope.size() +
                                                      TestConstants().size() - 1);
    size_t i = pick(*rng_);
    if (i < scope.size()) return Term::Var(scope[i]);
    return Term::Const(TestConstants()[i - scope.size()]);
  }

  Formula GenAtom(const std::vector<Symbol>& scope) {
    std::uniform_int_distribution<int> pick(0, 3);
    std::bernoulli_distribution fresh(new_relation_prob_);
    if (fresh(*rng_)) return Atom("N", {RandomTerm(scope)});
    switch (pick(*rng_)) {
      case 0:
        return Atom("P", {RandomTerm(scope)});
      case 1:
      case 2:
        return Atom("Q", {RandomTerm(scope), RandomTerm(scope)});
      default:
        return Equals(RandomTerm(scope), RandomTerm(scope));
    }
  }

  Formula Gen(int depth, std::vector<Symbol> scope) {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 0 : 5);
    switch (pick(*rng_)) {
      case 0:
        return GenAtom(scope);
      case 1:
        return Not(Gen(depth - 1, scope));
      case 2:
        return And(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return Or(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 4: {
        Symbol v = Name("u" + std::to_string(scope.size() + 1));
        scope.push_back(v);
        return Exists(v, Gen(depth - 1, scope));
      }
      default: {
        Symbol v = Name("u" + std::to_string(scope.size() + 1));
        scope.push_back(v);
        return Forall(v, Gen(depth - 1, scope));
      }
    }
  }

  std::mt19937_64* rng_;
  double new_relation_prob_;
};

/// Knowledgebase as a set of database strings, for order-insensitive asserts.
inline std::set<std::string> KbAsStrings(const Knowledgebase& kb) {
  std::set<std::string> out;
  for (const Database& db : kb) out.insert(db.ToString());
  return out;
}

}  // namespace kbt::testutil

#endif  // KBT_TESTS_TESTUTIL_H_
