// kbt_client — command-line client for kbt_server (src/net/ wire protocol).
//
// Usage:
//   kbt_client [--host H] --port N COMMAND...
//
// Commands:
//   ping                        liveness probe
//   apply EXPR                  commit a transformation, print the version
//   query SENTENCE              modal query (necessity); prints true/false
//   possibly SENTENCE           modal query (possibility)
//   if "A1; A2 => B"            nested counterfactual (necessity)
//   stats                       dump server counters
//
// Flags:
//   --deadline MS               server-side deadline for reads (0 = none)
//   --attempts N                retry attempts (default 4)
//
// Exit status: 0 on success (for reads, whether the answer is true or
// false — the answer is on stdout), 1 on any error.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.h"

namespace {

int Fail(const std::string& message) {
  std::cerr << "kbt_client: " << message << "\n";
  return 1;
}

// Splits "A1; A2 => B" into antecedents + consequent.
bool ParseCounterfactual(const std::string& text,
                         std::vector<std::string>* antecedents,
                         std::string* consequent) {
  size_t arrow = text.find("=>");
  if (arrow == std::string::npos) return false;
  std::string left = text.substr(0, arrow);
  *consequent = text.substr(arrow + 2);
  size_t start = 0;
  while (start <= left.size()) {
    size_t semi = left.find(';', start);
    std::string part = semi == std::string::npos
                           ? left.substr(start)
                           : left.substr(start, semi - start);
    if (part.find_first_not_of(" \t") != std::string::npos) {
      antecedents->push_back(part);
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return !consequent->empty();
}

int RunRead(kbt::net::Client& client, const std::vector<std::string>& ants,
            const std::string& consequent, bool necessarily,
            uint64_t deadline_ms) {
  kbt::StatusOr<kbt::net::ClientReadResult> result =
      client.Read(ants, consequent, necessarily, deadline_ms);
  if (!result.ok()) return Fail(result.status().ToString());
  std::cout << (result->holds ? "true" : "false") << " (version "
            << result->snapshot_version << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t deadline_ms = 0;
  kbt::net::ClientOptions options;
  std::vector<std::string> command;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      host = v;
    } else if (arg == "--port" && (v = next())) {
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--deadline" && (v = next())) {
      deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--attempts" && (v = next())) {
      options.max_attempts = std::strtoull(v, nullptr, 10);
    } else {
      command.push_back(arg);
    }
  }
  if (port == 0) return Fail("--port is required");
  if (command.empty()) return Fail("no command (ping|apply|query|possibly|if|stats)");

  kbt::net::Client client = kbt::net::Client::Dial(host, port, options);
  const std::string& cmd = command[0];

  if (cmd == "ping") {
    kbt::Status s = client.Ping();
    if (!s.ok()) return Fail(s.ToString());
    std::cout << "pong\n";
    return 0;
  }
  if (cmd == "apply") {
    if (command.size() < 2) return Fail("apply needs an expression");
    kbt::StatusOr<uint64_t> version = client.Apply(command[1]);
    if (!version.ok()) {
      if (client.maybe_executed()) {
        std::cerr << "kbt_client: outcome unknown (may have executed)\n";
      }
      return Fail(version.status().ToString());
    }
    std::cout << "version " << *version << "\n";
    return 0;
  }
  if (cmd == "query" || cmd == "possibly") {
    if (command.size() < 2) return Fail(cmd + " needs a sentence");
    return RunRead(client, {}, command[1], cmd == "query", deadline_ms);
  }
  if (cmd == "if") {
    if (command.size() < 2) return Fail("if needs \"A1; A2 => B\"");
    std::vector<std::string> ants;
    std::string consequent;
    if (!ParseCounterfactual(command[1], &ants, &consequent)) {
      return Fail("could not parse counterfactual (need '=>')");
    }
    return RunRead(client, ants, consequent, /*necessarily=*/true, deadline_ms);
  }
  if (cmd == "stats") {
    kbt::StatusOr<kbt::net::WireStatsReply> stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status().ToString());
    for (const auto& [name, value] : stats->counters) {
      std::cout << name << " = " << value << "\n";
    }
    return 0;
  }
  return Fail("unknown command: " + cmd);
}
