// kbt_shell — interactive / scripted front end to serve::Server.
//
// A thin line-oriented shell over the serving layer: it owns one server, one
// session, and translates commands into Apply / Query calls. Scripted mode
// (`--script FILE`) is strict — any command error or failed `expect` exits
// nonzero — which is what the CTest smoke test relies on.
//
// Commands (one per line; '#' starts a comment):
//   init R1/2 R2/1 ...      in-memory server over an empty singleton kb
//   load [ R/1: {(a)} ]     in-memory server from a knowledgebase literal
//   open DIR                durable server in DIR (current state seeds a fresh
//                           store; an existing store's recovered state wins)
//   insert SENTENCE         apply tau{SENTENCE}
//   apply PIPELINE          apply a pipeline, e.g. tau{P(a)} >> glb
//   query SENTENCE          modal query: necessarily
//   possibly SENTENCE       modal query: possibly
//   if A1; A2 => B          nested counterfactual (necessity)
//   if? A1; A2 => B         nested counterfactual (possibility)
//   expect true|false       assert the last query/if result
//   expect-error CMD...     assert that CMD fails (its error becomes success)
//   show                    print the current snapshot's knowledgebase
//   worlds                  world count + snapshot version
//   checkpoint | sync       durable-mode barriers (no-ops in memory)
//   stats                   server counters
//   replica DIR HOST:PORT   become a read replica of that primary (store in
//                           DIR); reads serve locally, writes are refused
//   repl-wait LSN [MS]      block until the replica has applied LSN
//   promote                 failover: stop pulling, open for writes
//   repl-stats              replication counters
//   help | quit

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/interner.h"
#include "net/transport.h"
#include "rel/io.h"
#include "repl/follower.h"
#include "serve/server.h"

namespace {

using kbt::Knowledgebase;
using kbt::Status;
using kbt::StatusOr;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

struct Shell {
  std::unique_ptr<kbt::serve::Server> server;
  // In replica mode the server lives inside the follower instead; `srv()` is
  // the one place that knows which.
  std::unique_ptr<kbt::repl::Follower> follower;
  std::unique_ptr<kbt::serve::Session> session;
  std::optional<bool> last_result;
  bool quit = false;

  kbt::serve::Server* srv() {
    return follower != nullptr ? follower->server() : server.get();
  }

  Status RequireServer() {
    if (srv() == nullptr)
      return Status::InvalidArgument("no server — run `init` or `load` first");
    return Status::OK();
  }

  void Adopt(std::unique_ptr<kbt::serve::Server> next) {
    session.reset();
    if (follower != nullptr) {
      follower->Stop();
      follower.reset();
    }
    server = std::move(next);
    session = server->StartSession();
  }

  Status Init(std::string_view args) {
    std::vector<kbt::RelationDecl> decls;
    std::istringstream in{std::string(args)};
    std::string token;
    while (in >> token) {
      size_t slash = token.rfind('/');
      if (slash == std::string::npos || slash + 1 == token.size()) {
        return Status::InvalidArgument("expected NAME/ARITY, got '" + token + "'");
      }
      size_t arity = 0;
      try {
        arity = std::stoul(token.substr(slash + 1));
      } catch (...) {
        return Status::InvalidArgument("bad arity in '" + token + "'");
      }
      decls.push_back({kbt::Name(token.substr(0, slash)), arity});
    }
    KBT_ASSIGN_OR_RETURN(kbt::Schema schema,
                         kbt::Schema::FromDecls(std::move(decls)));
    Adopt(std::make_unique<kbt::serve::Server>(
        Knowledgebase::Singleton(kbt::Database(schema))));
    std::cout << "ok: empty singleton kb over " << schema.size()
              << " relation(s)\n";
    return Status::OK();
  }

  Status Load(std::string_view args) {
    KBT_ASSIGN_OR_RETURN(Knowledgebase kb, kbt::ParseKnowledgebase(args));
    Adopt(std::make_unique<kbt::serve::Server>(std::move(kb)));
    std::cout << "ok: " << srv()->CurrentSnapshot()->kb.size() << " world(s)\n";
    return Status::OK();
  }

  Status OpenStore(std::string_view args) {
    std::string dir{Trim(args)};
    if (dir.empty()) return Status::InvalidArgument("open needs a directory");
    Knowledgebase seed =
        srv() != nullptr ? srv()->CurrentSnapshot()->kb : Knowledgebase();
    KBT_ASSIGN_OR_RETURN(std::unique_ptr<kbt::serve::Server> durable,
                         kbt::serve::Server::OpenDurable(dir, seed));
    Adopt(std::move(durable));
    std::cout << "ok: durable store at " << dir << ", lsn "
              << srv()->store()->lsn() << ", "
              << srv()->CurrentSnapshot()->kb.size() << " world(s)\n";
    return Status::OK();
  }

  Status Write(std::string_view expression) {
    KBT_RETURN_IF_ERROR(RequireServer());
    KBT_ASSIGN_OR_RETURN(uint64_t version, session->Apply(expression));
    std::cout << "ok: version " << version << ", "
              << srv()->CurrentSnapshot()->kb.size() << " world(s)\n";
    return Status::OK();
  }

  Status Query(std::string_view sentence, kbt::Modality modality) {
    KBT_RETURN_IF_ERROR(RequireServer());
    KBT_ASSIGN_OR_RETURN(kbt::serve::ReadResult result,
                         session->Holds(sentence, modality));
    last_result = result.holds;
    std::cout << (result.holds ? "true" : "false") << "  (v"
              << result.snapshot_version << ")\n";
    return Status::OK();
  }

  Status If(std::string_view args, kbt::Modality modality) {
    KBT_RETURN_IF_ERROR(RequireServer());
    size_t arrow = args.find("=>");
    if (arrow == std::string_view::npos)
      return Status::InvalidArgument("if needs `ANTECEDENTS => CONSEQUENT`");
    kbt::serve::ReadRequest request;
    std::string_view chain = args.substr(0, arrow);
    while (!chain.empty()) {
      size_t semi = chain.find(';');
      std::string_view part = Trim(chain.substr(0, semi));
      if (!part.empty()) request.antecedents.emplace_back(part);
      if (semi == std::string_view::npos) break;
      chain.remove_prefix(semi + 1);
    }
    request.consequent = std::string(Trim(args.substr(arrow + 2)));
    request.modality = modality;
    KBT_ASSIGN_OR_RETURN(kbt::serve::ReadResult result, session->Query(request));
    last_result = result.holds;
    std::cout << (result.holds ? "true" : "false") << "  (v"
              << result.snapshot_version << ")\n";
    return Status::OK();
  }

  Status Expect(std::string_view args) {
    std::string_view want = Trim(args);
    if (want != "true" && want != "false")
      return Status::InvalidArgument("expect true|false");
    if (!last_result.has_value())
      return Status::InvalidArgument("no query result to check");
    bool expected = want == "true";
    if (*last_result != expected) {
      return Status::Internal("expectation failed: last result was " +
                              std::string(*last_result ? "true" : "false"));
    }
    std::cout << "ok\n";
    return Status::OK();
  }

  Status Stats() {
    KBT_RETURN_IF_ERROR(RequireServer());
    kbt::serve::Server::ServerStats s = srv()->stats();
    std::cout << "version=" << s.snapshot_version << " commits=" << s.commits
              << " reads=" << s.reads << " batches=" << s.batches
              << " bank_hits=" << s.bank_hits
              << " bank_misses=" << s.bank_misses
              << " bank_budget_evictions=" << s.bank_budget_evictions
              << " deadlines_exceeded=" << s.deadlines_exceeded
              << " sat_interrupt_checks=" << s.sat_interrupt_checks
              << " sat_budget_trips=" << s.sat_budget_trips;
    if (srv()->store() != nullptr)
      std::cout << " lsn=" << srv()->store()->lsn();
    std::cout << "\n";
    return Status::OK();
  }

  Status Replica(std::string_view args) {
    std::istringstream in{std::string(args)};
    std::string dir, addr;
    in >> dir >> addr;
    size_t colon = addr.rfind(':');
    if (dir.empty() || addr.empty() || colon == std::string::npos ||
        colon + 1 == addr.size()) {
      return Status::InvalidArgument("replica needs `DIR HOST:PORT`");
    }
    std::string host = addr.substr(0, colon);
    int port = std::atoi(addr.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
      return Status::InvalidArgument("bad port in '" + addr + "'");

    kbt::repl::FollowerOptions options;
    options.dir = dir;
    options.redirect_hint = addr;
    options.connect = [host, port]() {
      return kbt::net::DialTcp(host, static_cast<uint16_t>(port));
    };
    // The shell's session pins server(); a mid-life re-seed must not swap it.
    options.reseed_after_open = false;
    KBT_ASSIGN_OR_RETURN(std::unique_ptr<kbt::repl::Follower> next,
                         kbt::repl::Follower::Open(std::move(options)));
    session.reset();
    server.reset();
    if (follower != nullptr) follower->Stop();
    follower = std::move(next);
    KBT_RETURN_IF_ERROR(follower->Start());
    session = follower->server()->StartSession();
    std::cout << "ok: replica of " << addr << ", epoch " << follower->epoch()
              << ", lsn " << follower->applied_lsn() << "\n";
    return Status::OK();
  }

  Status ReplWait(std::string_view args) {
    if (follower == nullptr)
      return Status::InvalidArgument("repl-wait needs a replica (`replica`)");
    std::istringstream in{std::string(args)};
    uint64_t lsn = 0;
    uint64_t timeout_ms = 10'000;
    if (!(in >> lsn))
      return Status::InvalidArgument("repl-wait needs `LSN [TIMEOUT_MS]`");
    in >> timeout_ms;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (follower->applied_lsn() < lsn) {
      if (follower->state() == kbt::repl::FollowerState::kLost)
        return Status::DataLoss("replica diverged while waiting");
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::DeadlineExceeded(
            "replica stuck at lsn " + std::to_string(follower->applied_lsn()) +
            " waiting for " + std::to_string(lsn));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::cout << "ok: applied lsn " << follower->applied_lsn() << "\n";
    return Status::OK();
  }

  Status Promote() {
    if (follower == nullptr)
      return Status::InvalidArgument("promote needs a replica (`replica`)");
    KBT_ASSIGN_OR_RETURN(uint64_t epoch, follower->Promote());
    // Same server object, now writable; a fresh session is still tidier.
    session = follower->server()->StartSession();
    std::cout << "ok: promoted, epoch " << epoch << ", lsn "
              << follower->applied_lsn() << "\n";
    return Status::OK();
  }

  Status ReplStats() {
    if (follower == nullptr)
      return Status::InvalidArgument("repl-stats needs a replica (`replica`)");
    kbt::repl::Follower::Stats s = follower->stats();
    const char* state = "idle";
    switch (s.state) {
      case kbt::repl::FollowerState::kIdle: state = "idle"; break;
      case kbt::repl::FollowerState::kStreaming: state = "streaming"; break;
      case kbt::repl::FollowerState::kLost: state = "lost"; break;
      case kbt::repl::FollowerState::kPromoted: state = "promoted"; break;
    }
    std::cout << "state=" << state << " epoch=" << s.epoch
              << " applied_lsn=" << s.applied_lsn
              << " primary_lsn=" << s.primary_lsn
              << " batches=" << s.batches_applied
              << " records=" << s.records_applied
              << " reconnects=" << s.reconnects
              << " resubscribes=" << s.resubscribes
              << " snapshot_installs=" << s.snapshot_installs
              << " stale_refused=" << s.stale_batches_refused << "\n";
    return Status::OK();
  }

  Status Execute(std::string_view line) {
    line = Trim(line);
    if (line.empty() || line.front() == '#') return Status::OK();
    size_t space = line.find(' ');
    std::string_view cmd = line.substr(0, space);
    std::string_view args =
        space == std::string_view::npos ? std::string_view() : Trim(line.substr(space + 1));

    if (cmd == "quit" || cmd == "exit") {
      quit = true;
      return Status::OK();
    }
    if (cmd == "help") {
      std::cout << "commands: init load open insert apply query possibly if if? "
                   "expect expect-error show worlds checkpoint sync stats "
                   "replica repl-wait promote repl-stats help quit\n";
      return Status::OK();
    }
    if (cmd == "expect-error") {
      if (args.empty())
        return Status::InvalidArgument("expect-error needs a command");
      Status inner = Execute(args);
      if (inner.ok())
        return Status::Internal("expected an error but `" + std::string(args) +
                                "` succeeded");
      std::cout << "ok: error: " << inner.message() << "\n";
      return Status::OK();
    }
    if (cmd == "init") return Init(args);
    if (cmd == "load") return Load(args);
    if (cmd == "open") return OpenStore(args);
    if (cmd == "insert") {
      if (args.empty()) return Status::InvalidArgument("insert needs a sentence");
      return Write("tau{" + std::string(args) + "}");
    }
    if (cmd == "apply") return Write(args);
    if (cmd == "query") return Query(args, kbt::Modality::kNecessarily);
    if (cmd == "possibly") return Query(args, kbt::Modality::kPossibly);
    if (cmd == "if") return If(args, kbt::Modality::kNecessarily);
    if (cmd == "if?") return If(args, kbt::Modality::kPossibly);
    if (cmd == "expect") return Expect(args);
    if (cmd == "stats") return Stats();
    if (cmd == "replica") return Replica(args);
    if (cmd == "repl-wait") return ReplWait(args);
    if (cmd == "promote") return Promote();
    if (cmd == "repl-stats") return ReplStats();
    if (cmd == "show") {
      KBT_RETURN_IF_ERROR(RequireServer());
      std::cout << kbt::FormatKnowledgebase(srv()->CurrentSnapshot()->kb)
                << "\n";
      return Status::OK();
    }
    if (cmd == "worlds") {
      KBT_RETURN_IF_ERROR(RequireServer());
      std::shared_ptr<const kbt::serve::Snapshot> snap = srv()->CurrentSnapshot();
      std::cout << snap->kb.size() << " world(s) at version " << snap->version
                << "\n";
      return Status::OK();
    }
    if (cmd == "checkpoint") {
      KBT_RETURN_IF_ERROR(RequireServer());
      KBT_RETURN_IF_ERROR(srv()->Checkpoint());
      std::cout << "ok\n";
      return Status::OK();
    }
    if (cmd == "sync") {
      KBT_RETURN_IF_ERROR(RequireServer());
      KBT_RETURN_IF_ERROR(srv()->Sync());
      std::cout << "ok\n";
      return Status::OK();
    }
    return Status::InvalidArgument("unknown command '" + std::string(cmd) +
                                   "' (try `help`)");
  }
};

int Run(std::istream& in, bool strict, bool echo) {
  Shell shell;
  std::string line;
  if (!strict) std::cout << "kbt> " << std::flush;
  while (!shell.quit && std::getline(in, line)) {
    if (echo) std::cout << "kbt> " << line << "\n";
    Status s = shell.Execute(line);
    if (!s.ok()) {
      std::cout << "error: " << s.message() << "\n";
      if (strict) return 1;
    }
    if (!strict && !shell.quit) std::cout << "kbt> " << std::flush;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--script" && i + 1 < argc) {
      script = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kbt_shell [--script FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in) {
      std::cerr << "cannot open " << script << "\n";
      return 2;
    }
    return Run(in, /*strict=*/true, /*echo=*/true);
  }
  return Run(std::cin, /*strict=*/false, /*echo=*/false);
}
