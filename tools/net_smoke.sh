#!/bin/sh
# End-to-end smoke run over a real TCP socket: start kbt_server on a free
# port, drive it with kbt_client (ping / apply / query / counterfactual /
# stats), then SIGTERM it and require a clean drain. Registered as the
# `net_smoke` ctest; fails loudly on any wrong answer, bad exit code, or a
# server that does not drain within the timeout.
#
# Usage: net_smoke.sh BUILD_DIR   (expects BUILD_DIR/kbt_server, kbt_client)
set -u

BUILD_DIR="${1:?usage: net_smoke.sh BUILD_DIR}"
SERVER="$BUILD_DIR/kbt_server"
CLIENT="$BUILD_DIR/kbt_client"
WORK="$(mktemp -d)"
SERVER_LOG="$WORK/server.log"
SERVER_PID=""

fail() {
  echo "net_smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$SERVER_LOG" >&2 || true
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

expect() {  # expect DESCRIPTION EXPECTED_OUTPUT cmd args...
  desc="$1"; want="$2"; shift 2
  got="$("$@" 2>&1)" || fail "$desc: exit $? output: $got"
  case "$got" in
    *"$want"*) ;;
    *) fail "$desc: wanted '$want' in: $got" ;;
  esac
}

"$SERVER" --init "P/1 Q/2" --store "$WORK/db" --port 0 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Scrape the bound port from the "listening on HOST:PORT" line.
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVER_LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before listening"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$PORT" ] || fail "no 'listening on' line within 10s"

C="$CLIENT --port $PORT"
expect "ping"            "pong"  $C ping
expect "query v0"        "false" $C query "P(a)"
expect "apply"           "version 1" $C apply "tau{P(a)}"
expect "query v1"        "true"  $C query "P(a)"
expect "possibly"        "true"  $C possibly "P(a)"
expect "counterfactual"  "true"  $C if "P(b) => P(b) & P(a)"
expect "deadline read"   "true"  $C --deadline 60000 query "P(a)"
expect "stats"           "commits" $C stats

kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  [ $i -ge 100 ] && fail "server did not drain within 10s of SIGTERM"
  sleep 0.1
  i=$((i + 1))
done
wait "$SERVER_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "server exited $rc after SIGTERM"
grep -q "drained cleanly" "$SERVER_LOG" || fail "no 'drained cleanly' line"

# The store survived the drain: a reopened server must already hold P(a).
"$SERVER" --init "P/1 Q/2" --store "$WORK/db" --port 0 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$SERVER_LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on reopen"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$PORT" ] || fail "no 'listening on' line on reopen"
expect "recovered read" "true" "$CLIENT" --port "$PORT" query "P(a)"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "reopened server exited non-zero"
rm -rf "$WORK"
echo "net_smoke: PASS"
