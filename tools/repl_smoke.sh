#!/bin/sh
# Two-node replication smoke run over real TCP: a kbt_server primary with
# --repl-primary, a kbt_server replica with --replica-of that catches up,
# serves reads, and refuses writes with a redirect; then a kbt_shell replica
# that follows, waits for a known lsn, and promotes. Both stores must pass
# kbt_fsck --deep afterwards. Registered as the `repl_smoke` ctest.
#
# Usage: repl_smoke.sh BUILD_DIR SOURCE_DIR
set -u

BUILD_DIR="${1:?usage: repl_smoke.sh BUILD_DIR SOURCE_DIR}"
SOURCE_DIR="${2:?usage: repl_smoke.sh BUILD_DIR SOURCE_DIR}"
SERVER="$BUILD_DIR/kbt_server"
CLIENT="$BUILD_DIR/kbt_client"
SHELL_BIN="$BUILD_DIR/kbt_shell"
FSCK="$BUILD_DIR/kbt_fsck"
WORK="$(mktemp -d)"
PRIMARY_LOG="$WORK/primary.log"
REPLICA_LOG="$WORK/replica.log"
PRIMARY_PID=""
REPLICA_PID=""

fail() {
  echo "repl_smoke: FAIL: $*" >&2
  echo "--- primary log ---" >&2
  cat "$PRIMARY_LOG" >&2 || true
  echo "--- replica log ---" >&2
  cat "$REPLICA_LOG" >&2 || true
  [ -n "$PRIMARY_PID" ] && kill -KILL "$PRIMARY_PID" 2>/dev/null
  [ -n "$REPLICA_PID" ] && kill -KILL "$REPLICA_PID" 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

expect() {  # expect DESCRIPTION EXPECTED_OUTPUT cmd args...
  desc="$1"; want="$2"; shift 2
  got="$("$@" 2>&1)" || fail "$desc: exit $? output: $got"
  case "$got" in
    *"$want"*) ;;
    *) fail "$desc: wanted '$want' in: $got" ;;
  esac
}

expect_fail() {  # expect_fail DESCRIPTION EXPECTED_OUTPUT cmd args...
  desc="$1"; want="$2"; shift 2
  if got="$("$@" 2>&1)"; then
    fail "$desc: expected failure, got success: $got"
  fi
  case "$got" in
    *"$want"*) ;;
    *) fail "$desc: wanted '$want' in: $got" ;;
  esac
}

scrape_port() {  # scrape_port LOGFILE PID
  port=""
  i=0
  while [ $i -lt 100 ]; do
    port="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$1")"
    [ -n "$port" ] && break
    kill -0 "$2" 2>/dev/null || return 1
    sleep 0.1
    i=$((i + 1))
  done
  [ -n "$port" ] || return 1
  echo "$port"
}

retry_true() {  # retry_true DESCRIPTION cmd args... — read until "true"
  desc="$1"; shift
  i=0
  while [ $i -lt 100 ]; do
    got="$("$@" 2>&1)" && case "$got" in *true*) return 0 ;; esac
    sleep 0.1
    i=$((i + 1))
  done
  fail "$desc: never became true (last: $got)"
}

# --- Primary up, two committed writes. ---
"$SERVER" --init "P/1" --store "$WORK/primary" --repl-primary \
  --node-id alpha --port 0 >"$PRIMARY_LOG" 2>&1 &
PRIMARY_PID=$!
PPORT="$(scrape_port "$PRIMARY_LOG" "$PRIMARY_PID")" || fail "primary never listened"
grep -q "role: primary" "$PRIMARY_LOG" || fail "no 'role: primary' line"

expect "apply 1" "version 1" "$CLIENT" --port "$PPORT" apply "tau{P(a)}"
expect "apply 2" "version 2" "$CLIENT" --port "$PPORT" apply "tau{P(b)}"

# --- Server-mode replica: catches up, serves reads, refuses writes. ---
"$SERVER" --replica-of "127.0.0.1:$PPORT" --store "$WORK/replica" \
  --node-id beta --port 0 >"$REPLICA_LOG" 2>&1 &
REPLICA_PID=$!
RPORT="$(scrape_port "$REPLICA_LOG" "$REPLICA_PID")" || fail "replica never listened"
grep -q "role: replica" "$REPLICA_LOG" || fail "no 'role: replica' line"

retry_true "replica sees P(a)" "$CLIENT" --port "$RPORT" query "P(a)"
expect "replica sees P(b)" "true" "$CLIENT" --port "$RPORT" query "P(b)"
expect_fail "replica refuses writes" "read-only" \
  "$CLIENT" --port "$RPORT" --attempts 1 apply "tau{P(x)}"
expect_fail "rejection names the primary" "redirect: 127.0.0.1:$PPORT" \
  "$CLIENT" --port "$RPORT" --attempts 1 apply "tau{P(x)}"

# A third write lands on the primary and flows through.
expect "apply 3" "version 3" "$CLIENT" --port "$PPORT" apply "tau{P(c)}"
retry_true "replica sees P(c)" "$CLIENT" --port "$RPORT" query "P(c)"

# --- Shell-mode replica: follow, wait for lsn 3, promote, write locally. ---
cat >"$WORK/promote.kbt" <<EOF
replica $WORK/replica2 127.0.0.1:$PPORT
repl-wait 3 30000
query P(a)
expect true
query P(c)
expect true
repl-stats
expect-error insert P(zz)
promote
insert P(z)
query P(z)
expect true
repl-stats
quit
EOF
SHELL_OUT="$("$SHELL_BIN" --script "$WORK/promote.kbt" 2>&1)" \
  || fail "shell replica/promote script failed: $SHELL_OUT"
case "$SHELL_OUT" in
  *"ok: promoted, epoch 2"*) ;;
  *) fail "shell did not promote to epoch 2: $SHELL_OUT" ;;
esac

# --- Drain both servers cleanly. ---
kill -TERM "$REPLICA_PID"
i=0
while kill -0 "$REPLICA_PID" 2>/dev/null; do
  [ $i -ge 100 ] && fail "replica did not drain within 10s of SIGTERM"
  sleep 0.1
  i=$((i + 1))
done
wait "$REPLICA_PID" || fail "replica exited non-zero"
grep -q "drained cleanly" "$REPLICA_LOG" || fail "replica: no 'drained cleanly'"

kill -TERM "$PRIMARY_PID"
i=0
while kill -0 "$PRIMARY_PID" 2>/dev/null; do
  [ $i -ge 100 ] && fail "primary did not drain within 10s of SIGTERM"
  sleep 0.1
  i=$((i + 1))
done
wait "$PRIMARY_PID" || fail "primary exited non-zero"
PRIMARY_PID=""
REPLICA_PID=""

# --- Every store passes a deep fsck; the promoted one carries epoch 2. ---
expect "fsck primary" "clean" "$FSCK" --deep "$WORK/primary"
expect "fsck replica" "clean" "$FSCK" --deep "$WORK/replica"
expect "fsck promoted" "clean" "$FSCK" --deep "$WORK/replica2"
expect "promoted epoch persisted" "replication: epoch 2" \
  "$FSCK" "$WORK/replica2"

rm -rf "$WORK"
echo "repl_smoke: PASS"
