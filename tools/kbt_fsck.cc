// kbt_fsck — offline store integrity verifier.
//
// Usage: kbt_fsck [--deep] [--strict-tail] DIR
//
//   --deep         also replay recovery end to end (checkpoint + WAL through
//                  the engine) and report the recovered lsn
//   --strict-tail  treat a torn WAL tail as an error (for stores that were
//                  closed cleanly)
//
// Walks the store like recovery would and reports every defect, not just the
// first: checkpoint decode + CRC, WAL header/record CRCs, torn tails,
// name/content lsn agreement, replication meta. Read-only; never repairs.
//
// Exit codes: 0 clean (warnings allowed), 1 corrupt, 2 usage or I/O failure.

#include <iostream>
#include <string>

#include "store/fsck.h"

int main(int argc, char** argv) {
  kbt::store::FsckOptions options;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--deep") {
      options.deep = true;
    } else if (arg == "--strict-tail") {
      options.strict_tail = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kbt_fsck [--deep] [--strict-tail] DIR\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "kbt_fsck: unknown flag " << arg << "\n";
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << "kbt_fsck: one directory at a time\n";
      return 2;
    }
  }
  if (dir.empty()) {
    std::cerr << "usage: kbt_fsck [--deep] [--strict-tail] DIR\n";
    return 2;
  }

  kbt::StatusOr<kbt::store::FsckReport> report =
      kbt::store::CheckStore(kbt::store::Env::Default(), dir, options);
  if (!report.ok()) {
    std::cerr << "kbt_fsck: " << report.status().ToString() << "\n";
    return 2;
  }
  std::cout << kbt::store::FormatFsckReport(*report);
  return report->clean() ? 0 : 1;
}
