// kbt_server — the network front end: serves a knowledgebase over the kbt
// wire protocol (src/net/) until SIGTERM/SIGINT, then drains gracefully.
//
// Usage:
//   kbt_server --init "R/2 S/1" [--store DIR] [--port N] [flags]
//   kbt_server --load "[ R/1: {(a)} ]" [--store DIR] [--port N] [flags]
//
// Flags:
//   --init DECLS            empty singleton kb over NAME/ARITY declarations
//   --load LITERAL          kb from a knowledgebase literal
//   --store DIR             durable mode: WAL + checkpoints in DIR
//   --host H --port N       bind address (port 0 = pick a free port)
//   --max-connections N     reject-early bound on concurrent connections
//   --max-in-flight N       reject-early bound on concurrently executing reads
//   --read-timeout-ms MS    per-connection idle timeout
//   --sat-budget N          per-read SAT conflict budget (0 = unlimited)
//   --cache-bytes N         per-sentence cache byte budget (0 = unbounded)
//   --cache-domains N       per-sentence cached-domain cap (0 = unbounded)
//
// Replication (see docs/replication.md):
//   --repl-primary          serve the replication protocol (requires --store)
//   --semi-sync             writes ack only after >=1 follower has them
//   --semi-sync-timeout-ms  bound on that wait (then kDeadlineExceeded,
//                           commit durable locally either way)
//   --node-id NAME          this node's identity (subscription key / fencing)
//   --replica-of HOST:PORT  run as a read replica of that primary instead:
//                           pull + apply its WAL, serve reads, refuse writes
//                           with a redirect to the primary
//
// The bound port is printed as "listening on HOST:PORT" once ready — the
// smoke test scrapes it. SIGTERM and SIGINT request a graceful drain: stop
// accepting, finish or cancel in-flight requests, fsync the store, exit 0.
// A replica also exits (nonzero) if it diverges from its primary — restart
// it to re-seed.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/interner.h"
#include "net/server.h"
#include "net/transport.h"
#include "rel/io.h"
#include "repl/follower.h"
#include "repl/primary.h"
#include "serve/server.h"

namespace {

kbt::net::NetServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: one atomic store; the drain runs on the main thread.
  if (g_server != nullptr) g_server->RequestShutdown();
}

kbt::StatusOr<kbt::Knowledgebase> InitialKb(const std::string& init,
                                            const std::string& load) {
  if (!load.empty()) return kbt::ParseKnowledgebase(load);
  std::vector<kbt::RelationDecl> decls;
  std::istringstream in{init};
  std::string token;
  while (in >> token) {
    size_t slash = token.rfind('/');
    if (slash == std::string::npos || slash + 1 == token.size()) {
      return kbt::Status::InvalidArgument("expected NAME/ARITY, got '" + token +
                                          "'");
    }
    size_t arity = 0;
    try {
      arity = std::stoul(token.substr(slash + 1));
    } catch (...) {
      return kbt::Status::InvalidArgument("bad arity in '" + token + "'");
    }
    decls.push_back({kbt::Name(token.substr(0, slash)), arity});
  }
  KBT_ASSIGN_OR_RETURN(kbt::Schema schema,
                       kbt::Schema::FromDecls(std::move(decls)));
  return kbt::Knowledgebase::Singleton(kbt::Database(schema));
}

int Fail(const std::string& message) {
  std::cerr << "kbt_server: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string init, load, store_dir, node_id, replica_of;
  bool repl_primary = false;
  kbt::net::NetServerOptions net_options;
  kbt::serve::ServerOptions serve_options;
  kbt::repl::PrimaryOptions primary_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--init" && (v = next())) {
      init = v;
    } else if (arg == "--load" && (v = next())) {
      load = v;
    } else if (arg == "--store" && (v = next())) {
      store_dir = v;
    } else if (arg == "--host" && (v = next())) {
      net_options.host = v;
    } else if (arg == "--port" && (v = next())) {
      net_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--max-connections" && (v = next())) {
      net_options.max_connections = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-in-flight" && (v = next())) {
      net_options.max_in_flight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--read-timeout-ms" && (v = next())) {
      net_options.read_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sat-budget" && (v = next())) {
      serve_options.read_sat_conflict_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-bytes" && (v = next())) {
      serve_options.cache_entry_byte_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-domains" && (v = next())) {
      serve_options.cache_entry_max_domains = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repl-primary") {
      repl_primary = true;
    } else if (arg == "--semi-sync") {
      primary_options.semi_sync = true;
    } else if (arg == "--semi-sync-timeout-ms" && (v = next())) {
      primary_options.semi_sync_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--node-id" && (v = next())) {
      node_id = v;
    } else if (arg == "--replica-of" && (v = next())) {
      replica_of = v;
    } else {
      return Fail("unknown or incomplete flag: " + arg);
    }
  }
  if (!replica_of.empty() && repl_primary) {
    return Fail("--replica-of and --repl-primary are mutually exclusive");
  }
  if (replica_of.empty() && init.empty() && load.empty()) {
    return Fail("one of --init or --load is required");
  }

  std::unique_ptr<kbt::serve::Server> server;
  std::unique_ptr<kbt::repl::Primary> primary;
  std::unique_ptr<kbt::repl::Follower> follower;
  kbt::serve::Server* front = nullptr;

  if (!replica_of.empty()) {
    // Replica: our serve::Server lives inside the Follower, seeded and kept
    // current by the pull loop; the net front serves its reads.
    if (store_dir.empty()) return Fail("--replica-of requires --store DIR");
    size_t colon = replica_of.rfind(':');
    if (colon == std::string::npos || colon + 1 == replica_of.size()) {
      return Fail("--replica-of wants HOST:PORT, got '" + replica_of + "'");
    }
    std::string host = replica_of.substr(0, colon);
    int port = std::atoi(replica_of.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Fail("bad port in '" + replica_of + "'");
    }
    kbt::repl::FollowerOptions follower_options;
    if (!node_id.empty()) follower_options.node_id = node_id;
    follower_options.dir = store_dir;
    follower_options.serve = serve_options;
    follower_options.redirect_hint = replica_of;
    follower_options.connect = [host, port]() {
      return kbt::net::DialTcp(host, static_cast<uint16_t>(port));
    };
    // The net front holds server() for its whole life; a mid-life re-seed
    // must restart the process rather than swap the server out from under it.
    follower_options.reseed_after_open = false;
    kbt::StatusOr<std::unique_ptr<kbt::repl::Follower>> opened =
        kbt::repl::Follower::Open(std::move(follower_options));
    if (!opened.ok()) return Fail("replica: " + opened.status().ToString());
    follower = std::move(*opened);
    front = follower->server();
  } else {
    kbt::StatusOr<kbt::Knowledgebase> kb = InitialKb(init, load);
    if (!kb.ok()) return Fail(kb.status().ToString());
    if (!store_dir.empty()) {
      kbt::StatusOr<std::unique_ptr<kbt::serve::Server>> durable =
          kbt::serve::Server::OpenDurable(store_dir, *kb,
                                          kbt::store::StoreOptions(),
                                          serve_options);
      if (!durable.ok()) return Fail(durable.status().ToString());
      server = std::move(*durable);
    } else {
      server =
          std::make_unique<kbt::serve::Server>(std::move(*kb), serve_options);
    }
    front = server.get();
    if (repl_primary) {
      if (store_dir.empty()) return Fail("--repl-primary requires --store");
      if (!node_id.empty()) primary_options.node_id = node_id;
      kbt::StatusOr<std::unique_ptr<kbt::repl::Primary>> attached =
          kbt::repl::Primary::Attach(server.get(), primary_options);
      if (!attached.ok()) return Fail(attached.status().ToString());
      primary = std::move(*attached);
      net_options.repl = primary.get();
    }
  }

  kbt::net::NetServer net(front, net_options);
  kbt::Status started = net.Start();
  if (!started.ok()) return Fail(started.ToString());

  g_server = &net;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::cout << "listening on " << net_options.host << ":" << net.port() << "\n"
            << std::flush;
  if (primary != nullptr) {
    std::cout << "role: primary, epoch " << primary->epoch()
              << (primary_options.semi_sync ? ", semi-sync" : "") << "\n"
              << std::flush;
  }

  // Replica: start pulling only after the net front is up, and watch for
  // divergence — a lost follower can't serve honest reads, so shut down.
  std::atomic<bool> watch_stop{false};
  std::thread watchdog;
  if (follower != nullptr) {
    kbt::Status pulling = follower->Start();
    if (!pulling.ok()) return Fail("replica: " + pulling.ToString());
    std::cout << "role: replica of " << replica_of << ", epoch "
              << follower->epoch() << ", lsn " << follower->applied_lsn()
              << "\n"
              << std::flush;
    watchdog = std::thread([&net, &watch_stop, f = follower.get()]() {
      while (!watch_stop.load(std::memory_order_acquire)) {
        if (f->state() == kbt::repl::FollowerState::kLost) {
          net.RequestShutdown();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  kbt::Status drained = net.WaitForShutdown();
  g_server = nullptr;
  watch_stop.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();
  bool lost = false;
  if (follower != nullptr) {
    follower->Stop();
    lost = follower->state() == kbt::repl::FollowerState::kLost;
  }
  if (!drained.ok()) return Fail("drain: " + drained.ToString());
  if (lost) return Fail("replica diverged from its primary; re-seed required");
  std::cout << "drained cleanly\n";
  return 0;
}
