// kbt_server — the network front end: serves a knowledgebase over the kbt
// wire protocol (src/net/) until SIGTERM/SIGINT, then drains gracefully.
//
// Usage:
//   kbt_server --init "R/2 S/1" [--store DIR] [--port N] [flags]
//   kbt_server --load "[ R/1: {(a)} ]" [--store DIR] [--port N] [flags]
//
// Flags:
//   --init DECLS            empty singleton kb over NAME/ARITY declarations
//   --load LITERAL          kb from a knowledgebase literal
//   --store DIR             durable mode: WAL + checkpoints in DIR
//   --host H --port N       bind address (port 0 = pick a free port)
//   --max-connections N     reject-early bound on concurrent connections
//   --max-in-flight N       reject-early bound on concurrently executing reads
//   --read-timeout-ms MS    per-connection idle timeout
//   --sat-budget N          per-read SAT conflict budget (0 = unlimited)
//   --cache-bytes N         per-sentence cache byte budget (0 = unbounded)
//   --cache-domains N       per-sentence cached-domain cap (0 = unbounded)
//
// The bound port is printed as "listening on HOST:PORT" once ready — the
// smoke test scrapes it. SIGTERM and SIGINT request a graceful drain: stop
// accepting, finish or cancel in-flight requests, fsync the store, exit 0.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/interner.h"
#include "net/server.h"
#include "rel/io.h"
#include "serve/server.h"

namespace {

kbt::net::NetServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: one atomic store; the drain runs on the main thread.
  if (g_server != nullptr) g_server->RequestShutdown();
}

kbt::StatusOr<kbt::Knowledgebase> InitialKb(const std::string& init,
                                            const std::string& load) {
  if (!load.empty()) return kbt::ParseKnowledgebase(load);
  std::vector<kbt::RelationDecl> decls;
  std::istringstream in{init};
  std::string token;
  while (in >> token) {
    size_t slash = token.rfind('/');
    if (slash == std::string::npos || slash + 1 == token.size()) {
      return kbt::Status::InvalidArgument("expected NAME/ARITY, got '" + token +
                                          "'");
    }
    size_t arity = 0;
    try {
      arity = std::stoul(token.substr(slash + 1));
    } catch (...) {
      return kbt::Status::InvalidArgument("bad arity in '" + token + "'");
    }
    decls.push_back({kbt::Name(token.substr(0, slash)), arity});
  }
  KBT_ASSIGN_OR_RETURN(kbt::Schema schema,
                       kbt::Schema::FromDecls(std::move(decls)));
  return kbt::Knowledgebase::Singleton(kbt::Database(schema));
}

int Fail(const std::string& message) {
  std::cerr << "kbt_server: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string init, load, store_dir;
  kbt::net::NetServerOptions net_options;
  kbt::serve::ServerOptions serve_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--init" && (v = next())) {
      init = v;
    } else if (arg == "--load" && (v = next())) {
      load = v;
    } else if (arg == "--store" && (v = next())) {
      store_dir = v;
    } else if (arg == "--host" && (v = next())) {
      net_options.host = v;
    } else if (arg == "--port" && (v = next())) {
      net_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--max-connections" && (v = next())) {
      net_options.max_connections = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-in-flight" && (v = next())) {
      net_options.max_in_flight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--read-timeout-ms" && (v = next())) {
      net_options.read_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sat-budget" && (v = next())) {
      serve_options.read_sat_conflict_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-bytes" && (v = next())) {
      serve_options.cache_entry_byte_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-domains" && (v = next())) {
      serve_options.cache_entry_max_domains = std::strtoull(v, nullptr, 10);
    } else {
      return Fail("unknown or incomplete flag: " + arg);
    }
  }
  if (init.empty() && load.empty()) {
    return Fail("one of --init or --load is required");
  }

  kbt::StatusOr<kbt::Knowledgebase> kb = InitialKb(init, load);
  if (!kb.ok()) return Fail(kb.status().ToString());

  std::unique_ptr<kbt::serve::Server> server;
  if (!store_dir.empty()) {
    kbt::StatusOr<std::unique_ptr<kbt::serve::Server>> durable =
        kbt::serve::Server::OpenDurable(store_dir, *kb, kbt::store::StoreOptions(),
                                        serve_options);
    if (!durable.ok()) return Fail(durable.status().ToString());
    server = std::move(*durable);
  } else {
    server = std::make_unique<kbt::serve::Server>(std::move(*kb), serve_options);
  }

  kbt::net::NetServer net(server.get(), net_options);
  kbt::Status started = net.Start();
  if (!started.ok()) return Fail(started.ToString());

  g_server = &net;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::cout << "listening on " << net_options.host << ":" << net.port() << "\n"
            << std::flush;

  kbt::Status drained = net.WaitForShutdown();
  g_server = nullptr;
  if (!drained.ok()) return Fail("drain: " + drained.ToString());
  std::cout << "drained cleanly\n";
  return 0;
}
